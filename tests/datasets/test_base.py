"""Unit tests for Dataset and GroundTruth."""

import numpy as np
import pytest

from repro.datasets import Dataset, GroundTruth
from repro.exceptions import GroundTruthError
from repro.subspaces import Subspace


@pytest.fixture()
def ground_truth():
    return GroundTruth({0: [(0, 1), (0, 1, 2)], 3: [(0, 1)]})


class TestGroundTruth:
    def test_points_sorted(self, ground_truth):
        assert ground_truth.points == (0, 3)

    def test_relevant_for(self, ground_truth):
        assert ground_truth.relevant_for(0) == (
            Subspace([0, 1]),
            Subspace([0, 1, 2]),
        )

    def test_relevant_at(self, ground_truth):
        assert ground_truth.relevant_at(0, 2) == (Subspace([0, 1]),)
        assert ground_truth.relevant_at(3, 3) == ()

    def test_points_at(self, ground_truth):
        assert ground_truth.points_at(2) == (0, 3)
        assert ground_truth.points_at(3) == (0,)
        assert ground_truth.points_at(5) == ()

    def test_dimensionalities(self, ground_truth):
        assert ground_truth.dimensionalities() == (2, 3)

    def test_subspaces_deduplicated(self, ground_truth):
        assert ground_truth.subspaces() == (
            Subspace([0, 1]),
            Subspace([0, 1, 2]),
        )

    def test_outliers_of(self, ground_truth):
        assert ground_truth.outliers_of((0, 1)) == (0, 3)
        assert ground_truth.outliers_of((0, 1, 2)) == (0,)

    def test_contains(self, ground_truth):
        assert 0 in ground_truth
        assert 1 not in ground_truth

    def test_unknown_point_raises(self, ground_truth):
        with pytest.raises(GroundTruthError):
            ground_truth.relevant_for(99)

    def test_rejects_empty_relevant_set(self):
        with pytest.raises(GroundTruthError):
            GroundTruth({0: []})

    def test_rejects_empty_mapping(self):
        with pytest.raises(GroundTruthError):
            GroundTruth({})

    def test_normalises_duplicates(self):
        gt = GroundTruth({0: [(1, 0), (0, 1)]})
        assert gt.relevant_for(0) == (Subspace([0, 1]),)


class TestDataset:
    def make(self, **overrides):
        params = dict(
            name="toy",
            X=np.zeros((10, 4)),
            outliers=(0, 3),
            ground_truth=GroundTruth({0: [(0, 1)], 3: [(2, 3)]}),
            kind="subspace",
        )
        params.update(overrides)
        return Dataset(**params)

    def test_basic_properties(self):
        ds = self.make()
        assert ds.n_samples == 10
        assert ds.n_features == 4
        assert ds.contamination == pytest.approx(0.2)

    def test_outliers_sorted(self):
        ds = self.make(outliers=(3, 0))
        assert ds.outliers == (0, 3)

    def test_rejects_out_of_range_outlier(self):
        with pytest.raises(GroundTruthError, match="out of range"):
            self.make(outliers=(0, 99), ground_truth=GroundTruth({0: [(0, 1)], 99: [(0, 1)]}))

    def test_rejects_duplicate_outliers(self):
        with pytest.raises(GroundTruthError, match="duplicate"):
            self.make(outliers=(0, 0))

    def test_rejects_outlier_without_ground_truth(self):
        with pytest.raises(GroundTruthError, match="lack ground-truth"):
            self.make(outliers=(0, 1))

    def test_rejects_subspace_out_of_range(self):
        with pytest.raises(Exception):
            self.make(ground_truth=GroundTruth({0: [(0, 9)], 3: [(2, 3)]}))

    def test_rejects_bad_kind(self):
        with pytest.raises(GroundTruthError, match="kind"):
            self.make(kind="weird")

    def test_relevant_feature_ratio_subspace(self):
        ds = self.make()
        assert ds.relevant_feature_ratio == pytest.approx(2 / 4)

    def test_relevant_feature_ratio_full_space(self):
        ds = self.make(kind="full_space")
        assert ds.relevant_feature_ratio == 1.0

    def test_describe_keys(self):
        desc = self.make().describe()
        assert desc["n_outliers"] == 2
        assert desc["n_relevant_subspaces"] == 2
        assert desc["outliers_per_relevant_subspace"] == 1.0
