"""Unit tests for the ground-truth construction procedures."""

import numpy as np
import pytest

from repro.datasets import exhaustive_ground_truth, top_outliers_per_subspace
from repro.detectors import LOF
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def planted():
    """Two planted outliers in different 2d subspaces of 5d data."""
    gen = np.random.default_rng(3)
    X = gen.normal(size=(150, 5))
    X[0, [0, 1]] = [7.0, -7.0]
    X[1, [3, 4]] = [-7.0, 7.0]
    return X


class TestExhaustiveGroundTruth:
    def test_finds_planted_subspaces(self, planted):
        gt = exhaustive_ground_truth(planted, [0, 1], dimensionalities=(2,))
        assert gt.relevant_at(0, 2) == ((0, 1),)
        assert gt.relevant_at(1, 2) == ((3, 4),)

    def test_one_subspace_per_dim_by_default(self, planted):
        gt = exhaustive_ground_truth(planted, [0], dimensionalities=(2, 3))
        assert len(gt.relevant_for(0)) == 2
        assert gt.dimensionalities() == (2, 3)

    def test_top_per_dim(self, planted):
        gt = exhaustive_ground_truth(
            planted, [0], dimensionalities=(2,), top_per_dim=3
        )
        assert len(gt.relevant_at(0, 2)) == 3

    def test_custom_detector(self, planted):
        gt = exhaustive_ground_truth(
            planted, [0], dimensionalities=(2,), detector=LOF(k=5)
        )
        assert gt.relevant_at(0, 2) == ((0, 1),)

    def test_rejects_empty_outliers(self, planted):
        with pytest.raises(ValidationError):
            exhaustive_ground_truth(planted, [], dimensionalities=(2,))

    def test_rejects_dim_above_width(self, planted):
        with pytest.raises(ValidationError):
            exhaustive_ground_truth(planted, [0], dimensionalities=(9,))


class TestTopOutliersPerSubspace:
    def test_associates_planted_outliers(self, planted):
        gt = top_outliers_per_subspace(planted, [(0, 1), (3, 4)], k=1)
        assert gt.relevant_for(0) == ((0, 1),)
        assert gt.relevant_for(1) == ((3, 4),)

    def test_k_points_per_subspace(self, planted):
        gt = top_outliers_per_subspace(planted, [(0, 1)], k=5)
        covered = [p for p in gt.points if (0, 1) in gt.relevant_for(p)]
        assert len(covered) == 5

    def test_point_in_two_subspaces(self, planted):
        X = planted.copy()
        X[0, [3, 4]] = [7.0, 7.0]  # now deviates in both blocks
        gt = top_outliers_per_subspace(X, [(0, 1), (3, 4)], k=2)
        assert gt.relevant_for(0) == ((0, 1), (3, 4))

    def test_rejects_empty_subspaces(self, planted):
        from repro.exceptions import GroundTruthError

        with pytest.raises(GroundTruthError):
            top_outliers_per_subspace(planted, [])
