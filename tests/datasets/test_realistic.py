"""Unit tests for the realistic (full-space outlier) surrogate generator."""

import numpy as np
import pytest

from repro.datasets import (
    REALISTIC_SHAPES,
    make_realistic_dataset,
    verify_separability,
)
from repro.detectors import LOF
from repro.exceptions import ValidationError


class TestShapes:
    def test_known_shapes_registered(self):
        assert REALISTIC_SHAPES["breast"] == (198, 31, 20)
        assert REALISTIC_SHAPES["breast_diagnostic"] == (569, 30, 57)
        assert REALISTIC_SHAPES["electricity"] == (1205, 23, 121)

    def test_surrogate_matches_shape(self, breast_small):
        assert breast_small.n_samples == 198
        assert breast_small.n_features == 8  # smoke override
        assert len(breast_small.outliers) == 20
        assert breast_small.kind == "full_space"

    def test_custom_shape(self):
        ds = make_realistic_dataset(
            "custom",
            n_samples=80,
            n_features=5,
            n_outliers=8,
            gt_dimensionalities=(2,),
            seed=1,
        )
        assert ds.X.shape == (80, 5)
        assert len(ds.outliers) == 8

    def test_unknown_name_without_shape(self):
        with pytest.raises(ValidationError, match="unknown dataset name"):
            make_realistic_dataset("custom")

    def test_too_many_outliers(self):
        with pytest.raises(ValidationError, match="too large"):
            make_realistic_dataset(
                "x", n_samples=40, n_features=4, n_outliers=30,
                gt_dimensionalities=(2,),
            )

    def test_gt_dim_above_width(self):
        with pytest.raises(ValidationError):
            make_realistic_dataset(
                "x", n_samples=40, n_features=3, n_outliers=4,
                gt_dimensionalities=(4,),
            )


class TestGroundTruthStructure:
    def test_one_subspace_per_dimensionality(self, breast_small):
        gt = breast_small.ground_truth
        for point in gt.points:
            assert len(gt.relevant_at(point, 2)) == 1
            assert len(gt.relevant_at(point, 3)) == 1

    def test_every_point_explained_at_every_dim(self, breast_small):
        gt = breast_small.ground_truth
        assert gt.points_at(2) == breast_small.outliers
        assert gt.points_at(3) == breast_small.outliers

    def test_ground_truth_is_argmax_of_exhaustive_search(self, breast_small):
        # Spot-check the paper's procedure: the stored 2d subspace is the
        # exhaustive z-score argmax for that point.
        from repro.subspaces import SubspaceScorer, all_subspaces

        scorer = SubspaceScorer(breast_small.X, LOF(k=15))
        point = breast_small.outliers[0]
        best = max(
            all_subspaces(breast_small.n_features, 2),
            key=lambda s: scorer.point_zscore(s, point),
        )
        assert breast_small.ground_truth.relevant_at(point, 2)[0] == best


class TestOutlierVisibility:
    def test_full_space_visibility(self, breast_small):
        # Outliers must be detectable by LOF in the full feature space.
        scores = LOF(k=15).score(breast_small.X)
        top = set(
            np.argsort(-scores)[: len(breast_small.outliers)].tolist()
        )
        hits = sum(1 for o in breast_small.outliers if o in top)
        assert hits >= 0.9 * len(breast_small.outliers)

    def test_separability_in_relevant_subspaces(self, breast_small):
        separability = verify_separability(breast_small)
        assert min(separability.values()) == 1.0

    def test_deterministic(self):
        a = make_realistic_dataset(
            "breast", n_features=6, gt_dimensionalities=(2,), seed=2
        )
        b = make_realistic_dataset(
            "breast", n_features=6, gt_dimensionalities=(2,), seed=2
        )
        assert np.allclose(a.X, b.X)
        assert a.outliers == b.outliers
