"""Unit tests for the dataset registry."""

import pytest

from repro.datasets import (
    DATASET_NAMES,
    clear_cache,
    dataset_names,
    load_dataset,
)
from repro.exceptions import ValidationError


class TestNames:
    def test_all_names(self):
        assert "hics_14" in DATASET_NAMES
        assert "electricity" in DATASET_NAMES
        assert len(DATASET_NAMES) == 8

    def test_kind_filter(self):
        assert all(n.startswith("hics_") for n in dataset_names("subspace"))
        assert set(dataset_names("full_space")) == {
            "breast",
            "breast_diagnostic",
            "electricity",
        }

    def test_bad_kind(self):
        with pytest.raises(ValidationError):
            dataset_names("temporal")


class TestLoadDataset:
    def test_caches_identical_parameterisation(self):
        a = load_dataset("hics_14", n_samples=200)
        b = load_dataset("hics_14", n_samples=200)
        assert a is b

    def test_distinct_parameterisations_not_shared(self):
        a = load_dataset("hics_14", n_samples=200)
        b = load_dataset("hics_14", n_samples=200, seed=1)
        assert a is not b

    def test_overrides_forwarded(self):
        ds = load_dataset("hics_14", n_samples=250)
        assert ds.n_samples == 250

    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown dataset"):
            load_dataset("hics_15")
        with pytest.raises(ValidationError, match="unknown dataset"):
            load_dataset("wine")

    def test_clear_cache(self):
        a = load_dataset("hics_14", n_samples=200)
        clear_cache()
        b = load_dataset("hics_14", n_samples=200)
        assert a is not b
        assert (a.X == b.X).all()  # still deterministic
