"""Unit tests for the HiCS-style synthetic generator.

These assert the Table-1 / Figure-8 properties the paper relies on.
"""

import numpy as np
import pytest

from repro.datasets import (
    hics_block_layout,
    load_dataset,
    make_hics_dataset,
    verify_separability,
)
from repro.datasets.synthetic import HICS_DIMENSIONS
from repro.exceptions import ValidationError


class TestBlockLayout:
    @pytest.mark.parametrize(
        "width,expected_blocks", [(14, 4), (23, 7), (39, 12), (70, 22), (100, 31)]
    )
    def test_block_counts_match_table1(self, width, expected_blocks):
        assert len(hics_block_layout(width)) == expected_blocks

    def test_blocks_are_disjoint(self):
        blocks = hics_block_layout(100)
        seen: set[int] = set()
        for block in blocks:
            assert not (seen & set(block))
            seen |= set(block)

    def test_blocks_cover_all_features(self):
        blocks = hics_block_layout(100)
        assert {f for b in blocks for f in b} == set(range(100))

    def test_block_dimensionalities_in_range(self):
        assert all(2 <= len(b) <= 5 for b in hics_block_layout(100))

    def test_rejects_unknown_width(self):
        with pytest.raises(ValidationError):
            hics_block_layout(50)


class TestGeneratedDatasets:
    @pytest.mark.parametrize(
        "width,n_outliers,contamination",
        [(14, 20, 2.0), (23, 34, 3.4), (39, 59, 5.9), (70, 100, 10.0), (100, 143, 14.3)],
    )
    def test_outlier_counts_match_table1(self, width, n_outliers, contamination):
        ds = make_hics_dataset(width, 1000, seed=0)
        assert len(ds.outliers) == n_outliers
        assert round(100 * ds.contamination, 1) == contamination

    def test_five_outliers_per_subspace(self):
        ds = make_hics_dataset(23, 1000, seed=0)
        gt = ds.ground_truth
        for subspace in gt.subspaces():
            assert len(gt.outliers_of(subspace)) == 5

    def test_shared_outliers_fraction(self):
        ds = make_hics_dataset(100, 1000, seed=0)
        gt = ds.ground_truth
        shared = [p for p in gt.points if len(gt.relevant_for(p)) == 2]
        assert len(shared) == 12  # ~9 % of 143, matching Table 1

    def test_prefix_consistency(self):
        full = make_hics_dataset(100, 500, seed=3)
        narrow = make_hics_dataset(23, 500, seed=3)
        assert np.allclose(narrow.X, full.X[:, :23])

    def test_values_in_unit_cube(self):
        ds = make_hics_dataset(14, 500, seed=1)
        assert ds.X.min() >= 0.0
        assert ds.X.max() <= 1.0

    def test_deterministic_per_seed(self):
        a = make_hics_dataset(14, 300, seed=4)
        b = make_hics_dataset(14, 300, seed=4)
        assert np.allclose(a.X, b.X)
        assert a.outliers == b.outliers

    def test_different_seeds_differ(self):
        a = make_hics_dataset(14, 300, seed=4)
        b = make_hics_dataset(14, 300, seed=5)
        assert not np.allclose(a.X, b.X)

    def test_rejects_unknown_width(self):
        with pytest.raises(ValidationError):
            make_hics_dataset(50, 300)


class TestOutlierVisibility:
    """The paper's Section 3.2 visibility properties."""

    def test_outliers_detectable_in_relevant_subspace(self, hics_small):
        separability = verify_separability(hics_small)
        assert min(separability.values()) == 1.0

    def test_outliers_masked_in_1d_projections(self, hics_small, hics_small_scorer):
        # In single-feature projections planted outliers mix with inliers:
        # their ranks scatter across the whole dataset instead of occupying
        # the top positions (occasional 1d LOF artifacts aside). Contrast
        # with the relevant subspace, where all five occupy ranks 0-4.
        gt = hics_small.ground_truth
        n = hics_small.n_samples
        for subspace in gt.subspaces():
            planted = list(gt.outliers_of(subspace))
            for feature in subspace:
                z = hics_small_scorer.zscores((feature,))
                order = np.argsort(-z)
                ranks = sorted(
                    int(np.flatnonzero(order == p)[0]) for p in planted
                )
                in_top = sum(1 for r in ranks if r < len(planted))
                assert in_top <= 2
                assert np.median(ranks) > 0.05 * n

    def test_outliers_visible_in_augmented_subspace(self, hics_small, hics_small_scorer):
        # Adding one foreign feature must keep the planted outliers highly
        # ranked (the paper's "augmentation" property).
        gt = hics_small.ground_truth
        subspace = gt.subspaces()[0]  # the 2d block
        foreign = next(
            f for f in range(hics_small.n_features) if f not in subspace
        )
        augmented = subspace.union((foreign,))
        z = hics_small_scorer.zscores(augmented)
        planted = list(gt.outliers_of(subspace))
        top = set(np.argsort(-z)[: 2 * len(planted)].tolist())
        assert sum(1 for p in planted if p in top) >= 4
