"""Unit tests for the Fast ABOD detector."""

import numpy as np
import pytest

from repro.detectors import FastABOD
from repro.exceptions import ValidationError


class TestFastABODBehaviour:
    def test_detects_planted_outlier(self, blob_with_outlier):
        X, outlier = blob_with_outlier
        scores = FastABOD(k=10).score(X)
        assert int(np.argmax(scores)) == outlier

    def test_border_point_outscores_center(self, rng):
        # ABOD's signature property: points at the border of the data see
        # their neighbours in similar directions (low angle variance).
        X = rng.uniform(-1, 1, size=(200, 2))
        X[0] = [0.0, 0.0]  # deep inside
        X[1] = [3.0, 3.0]  # far outside the support
        scores = FastABOD(k=15).score(X)
        assert scores[1] > scores[0]

    def test_high_dimensional_data(self, rng):
        X = rng.normal(size=(100, 40))
        X[0] += 8.0
        scores = FastABOD(k=10).score(X)
        assert int(np.argmax(scores)) == 0

    def test_coincident_points_finite(self):
        X = np.array([[0.0, 0.0]] * 20 + [[4.0, 4.0]])
        scores = FastABOD(k=5).score(X)
        assert np.isfinite(scores).all()

    def test_two_points_scores_zero(self):
        scores = FastABOD(k=2).score([[0.0, 0.0], [1.0, 1.0]])
        assert (scores == 0.0).all()

    def test_deterministic(self, rng):
        X = rng.normal(size=(50, 3))
        det = FastABOD(k=8)
        assert np.allclose(det.score(X), det.score(X))


class TestFastABODInterface:
    def test_requires_k_at_least_two(self):
        with pytest.raises(ValidationError):
            FastABOD(k=1)

    def test_cache_key(self):
        assert FastABOD(k=10).cache_key() != FastABOD(k=12).cache_key()
