"""Unit tests for the extension detectors (k-NN distance, Mahalanobis)."""

import numpy as np
import pytest

from repro.detectors import KNNDetector, MahalanobisDetector
from repro.exceptions import ValidationError


class TestKNNDetector:
    def test_detects_planted_outlier(self, blob_with_outlier):
        X, outlier = blob_with_outlier
        scores = KNNDetector(k=5).score(X)
        assert int(np.argmax(scores)) == outlier

    def test_kth_vs_mean_aggregation(self, rng):
        X = rng.normal(size=(50, 2))
        kth = KNNDetector(k=5, aggregation="kth").score(X)
        mean = KNNDetector(k=5, aggregation="mean").score(X)
        assert (kth >= mean).all()  # kth distance bounds the mean from above

    def test_rejects_bad_aggregation(self):
        with pytest.raises(ValidationError):
            KNNDetector(aggregation="median")

    def test_scores_nonnegative(self, rng):
        assert (KNNDetector(k=3).score(rng.normal(size=(30, 2))) >= 0).all()

    @pytest.mark.parametrize("aggregation", ["kth", "mean"])
    def test_knn_view_matches_precomputed_distances_bitwise(
        self, rng, aggregation
    ):
        from repro.neighbors.provider import DistanceProvider

        X = rng.normal(size=(90, 5))
        provider = DistanceProvider(X, max_bytes=1 << 24)
        s = (0, 2, 4)
        P = X[:, list(s)]
        det = KNNDetector(k=7, aggregation=aggregation)
        via_knn = det.score(P, knn=provider.knn_view(s, parent=(0, 2)))
        via_sq = det.score(P, sq_distances=provider.squared_distances(s))
        assert via_knn.tobytes() == via_sq.tobytes()


class TestMahalanobisDetector:
    def test_detects_planted_outlier(self, blob_with_outlier):
        X, outlier = blob_with_outlier
        scores = MahalanobisDetector().score(X)
        assert int(np.argmax(scores)) == outlier

    def test_accounts_for_correlation(self, rng):
        # Two points equally far from the mean in Euclidean terms, but one
        # lies along the correlation axis: Mahalanobis must prefer the
        # off-axis one as more outlying.
        latent = rng.normal(size=500)
        X = np.column_stack([latent, latent + rng.normal(0, 0.1, 500)])
        X = np.vstack([X, [2.0, 2.0], [2.0, -2.0]])
        scores = MahalanobisDetector().score(X)
        assert scores[-1] > scores[-2]

    def test_degenerate_covariance_regularised(self):
        X = np.array([[1.0, 2.0]] * 20 + [[1.5, 2.5]])
        scores = MahalanobisDetector(regularization=1e-3).score(X)
        assert np.isfinite(scores).all()

    def test_single_feature(self, rng):
        X = rng.normal(size=(40, 1))
        X[0] = 10.0
        scores = MahalanobisDetector().score(X)
        assert int(np.argmax(scores)) == 0

    def test_rejects_bad_regularization(self):
        with pytest.raises(ValidationError):
            MahalanobisDetector(regularization=2.0)


class TestFactory:
    def test_make_paper_detector(self):
        from repro.detectors import make_paper_detector

        assert make_paper_detector("lof").k == 15
        assert make_paper_detector("fast_abod").k == 10
        forest = make_paper_detector("iforest", n_repeats=2)
        assert forest.n_trees == 100
        assert forest.n_repeats == 2

    def test_unknown_name(self):
        from repro.detectors import make_paper_detector

        with pytest.raises(ValidationError):
            make_paper_detector("svm")
