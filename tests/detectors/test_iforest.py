"""Unit tests for the Isolation Forest detector."""

import numpy as np
import pytest

from repro.detectors import IsolationForest, average_path_length
from repro.detectors.iforest import _grow_tree
from repro.exceptions import ValidationError


class TestAveragePathLength:
    def test_conventions(self):
        assert average_path_length(1) == 0.0
        assert average_path_length(2) == 1.0

    def test_monotone(self):
        values = [average_path_length(n) for n in range(2, 200)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_matches_formula(self):
        n = 256
        harmonic = np.log(n - 1) + np.euler_gamma
        assert average_path_length(n) == pytest.approx(
            2 * harmonic - 2 * (n - 1) / n
        )


class TestIsolationForestBehaviour:
    def test_detects_planted_outlier(self, rng):
        X = np.vstack([rng.normal(0, 0.5, size=(200, 3)), [[9.0, -9.0, 9.0]]])
        scores = IsolationForest(n_trees=50, n_repeats=1, seed=0).score(X)
        assert int(np.argmax(scores)) == 200

    def test_scores_in_unit_interval(self, rng):
        X = rng.normal(size=(150, 4))
        scores = IsolationForest(n_trees=30, n_repeats=1, seed=1).score(X)
        assert (scores > 0.0).all()
        assert (scores < 1.0).all()

    def test_outlier_score_above_half(self, rng):
        X = np.vstack([rng.normal(0, 0.3, size=(300, 2)), [[10.0, 10.0]]])
        scores = IsolationForest(n_trees=100, n_repeats=1, seed=2).score(X)
        assert scores[-1] > 0.5

    def test_deterministic_per_input(self, rng):
        X = rng.normal(size=(80, 3))
        det = IsolationForest(n_trees=20, n_repeats=2, seed=3)
        assert np.allclose(det.score(X), det.score(X))

    def test_different_inputs_different_randomness(self, rng):
        det = IsolationForest(n_trees=20, n_repeats=1, seed=3)
        X = rng.normal(size=(80, 3))
        # Same values, different column: fingerprint differs.
        a = det.score(X)
        b = det.score(X[:, [1, 0, 2]])
        assert not np.allclose(a, b)

    def test_repeats_reduce_variance(self, rng):
        X = np.vstack([rng.normal(size=(200, 2)), [[6.0, 6.0]]])
        few = [
            IsolationForest(n_trees=10, n_repeats=1, seed=s).score(X)[-1]
            for s in range(8)
        ]
        many = [
            IsolationForest(n_trees=10, n_repeats=10, seed=s).score(X)[-1]
            for s in range(8)
        ]
        assert np.var(many) < np.var(few)

    def test_duplicated_points_become_leaves(self, rng):
        X = np.array([[1.0, 1.0]] * 50 + [[2.0, 2.0]])
        scores = IsolationForest(n_trees=20, n_repeats=1, seed=0).score(X)
        assert np.isfinite(scores).all()
        assert int(np.argmax(scores)) == 50

    def test_subsample_capped_at_n(self, rng):
        X = rng.normal(size=(40, 2))
        scores = IsolationForest(
            n_trees=10, subsample_size=256, n_repeats=1, seed=0
        ).score(X)
        assert scores.shape == (40,)


class TestTreeConstruction:
    def test_leaf_only_tree_for_constant_data(self):
        gen = np.random.default_rng(0)
        S = np.ones((10, 3))
        tree = _grow_tree(S, height_limit=5, rng=gen)
        assert tree.feature[0] == -1  # root is a leaf

    def test_path_lengths_bounded_by_height(self, rng):
        S = rng.normal(size=(64, 2))
        tree = _grow_tree(S, height_limit=4, rng=np.random.default_rng(1))
        lengths = tree.path_lengths(S)
        # depth <= 4 plus the c(leaf size) adjustment
        assert (lengths <= 4 + average_path_length(64)).all()

    def test_parameters_validated(self):
        with pytest.raises(ValidationError):
            IsolationForest(n_trees=0)
        with pytest.raises(ValidationError):
            IsolationForest(subsample_size=1)
        with pytest.raises(ValidationError):
            IsolationForest(n_repeats=0)
