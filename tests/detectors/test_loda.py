"""Unit tests for the LODA detector extension."""

import numpy as np
import pytest

from repro.detectors import LODA
from repro.exceptions import ValidationError


class TestLODABehaviour:
    def test_detects_planted_outlier(self, rng):
        X = np.vstack([rng.normal(0, 0.4, size=(400, 6)), [[5.0] * 6]])
        scores = LODA(n_projections=100, seed=0).score(X)
        assert int(np.argmax(scores)) == 400

    def test_deterministic_per_input(self, rng):
        X = rng.normal(size=(100, 4))
        det = LODA(n_projections=50, seed=1)
        assert np.allclose(det.score(X), det.score(X))

    def test_different_seeds_differ(self, rng):
        X = rng.normal(size=(100, 4))
        a = LODA(n_projections=50, seed=1).score(X)
        b = LODA(n_projections=50, seed=2).score(X)
        assert not np.allclose(a, b)

    def test_scores_finite(self, rng):
        X = rng.normal(size=(60, 3))
        assert np.isfinite(LODA(n_projections=30, seed=0).score(X)).all()

    def test_constant_data_does_not_crash(self):
        X = np.ones((30, 3))
        scores = LODA(n_projections=20, seed=0).score(X)
        assert np.isfinite(scores).all()

    def test_explicit_bins(self, rng):
        X = rng.normal(size=(80, 3))
        scores = LODA(n_projections=30, n_bins=10, seed=0).score(X)
        assert scores.shape == (80,)


class TestLODAFeatureAttribution:
    def test_attributes_planted_features(self):
        gen = np.random.default_rng(0)
        X = gen.normal(size=(400, 6))
        X[0, [2, 4]] = [7.0, -7.0]
        det = LODA(n_projections=200, seed=1)
        det.score(X)
        importances = det.feature_scores(X, 0)
        assert sorted(np.argsort(-importances)[:2].tolist()) == [2, 4]

    def test_inlier_attribution_is_flat(self):
        gen = np.random.default_rng(3)
        X = gen.normal(size=(300, 5))
        det = LODA(n_projections=150, seed=0)
        importances = det.feature_scores(X, 10)  # ordinary point
        assert np.max(np.abs(importances)) < 4.0

    def test_works_without_prior_score_call(self):
        gen = np.random.default_rng(1)
        X = gen.normal(size=(100, 4))
        det = LODA(n_projections=50, seed=0)
        importances = det.feature_scores(X, 0)
        assert importances.shape == (4,)

    def test_rejects_bad_point(self, rng):
        X = rng.normal(size=(50, 3))
        with pytest.raises(ValidationError):
            LODA(seed=0).feature_scores(X, 500)


class TestLODAInterface:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            LODA(n_projections=0)
        with pytest.raises(ValidationError):
            LODA(n_bins=1)

    def test_cache_key(self):
        assert LODA(seed=0).cache_key() != LODA(seed=1).cache_key()
