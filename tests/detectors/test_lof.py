"""Unit tests for the LOF detector."""

import numpy as np
import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.neighbors.provider import DistanceProvider


class TestLOFBehaviour:
    def test_detects_planted_outlier(self, blob_with_outlier):
        X, outlier = blob_with_outlier
        scores = LOF(k=10).score(X)
        assert int(np.argmax(scores)) == outlier

    def test_inliers_score_near_one(self, rng):
        X = rng.uniform(size=(400, 2))
        scores = LOF(k=15).score(X)
        assert np.median(scores) == pytest.approx(1.0, abs=0.1)

    def test_uniform_grid_scores_close_to_one(self):
        # A regular grid has near-identical local density away from the
        # border, so interior LOF ~ 1 (edge effects decay inwards).
        xs, ys = np.meshgrid(np.arange(12.0), np.arange(12.0))
        X = np.column_stack([xs.ravel(), ys.ravel()])
        scores = LOF(k=4).score(X)
        interior = scores.reshape(12, 12)[4:-4, 4:-4]
        assert np.allclose(interior, 1.0, atol=0.05)

    def test_varying_density(self, rng):
        # Outlier near a sparse cluster should outscore ordinary members of
        # a dense cluster (the scenario LOF was designed for): its score is
        # measured against *local* density, not the global one.
        dense = rng.normal(0.0, 0.05, size=(100, 2))
        sparse = rng.normal(5.0, 1.0, size=(100, 2))
        lone = np.array([[5.0, 12.0]])
        X = np.vstack([dense, sparse, lone])
        scores = LOF(k=10).score(X)
        assert scores[-1] > np.percentile(scores[:100], 99)

    def test_duplicates_do_not_crash(self):
        X = np.array([[0.0, 0.0]] * 30 + [[5.0, 5.0]])
        scores = LOF(k=5).score(X)
        assert np.isfinite(scores).all()
        assert int(np.argmax(scores)) == 30

    def test_k_larger_than_n_clamped(self, rng):
        X = rng.normal(size=(8, 2))
        scores = LOF(k=50).score(X)
        assert scores.shape == (8,)

    def test_invariant_to_translation(self, rng):
        X = rng.normal(size=(60, 3))
        assert np.allclose(LOF(k=10).score(X), LOF(k=10).score(X + 100.0))


class TestLOFInterface:
    def test_rejects_bad_k(self):
        with pytest.raises(ValidationError):
            LOF(k=0)

    def test_rejects_1d_input(self):
        with pytest.raises(ValidationError):
            LOF().score([1.0, 2.0])

    def test_cache_key_distinguishes_k(self):
        assert LOF(k=5).cache_key() != LOF(k=10).cache_key()
        assert LOF(k=5).cache_key() == LOF(k=5).cache_key()

    def test_repr(self):
        assert "k=15" in repr(LOF())


class TestLOFKNNQueryPath:
    def test_knn_view_matches_precomputed_distances_bitwise(self, rng):
        # Both provider-backed paths run on the same canonical float32
        # chain, so their LOF scores must agree to the last bit — the
        # guarantee that lets the scorer pick either path freely.
        X = rng.normal(size=(120, 6))
        provider = DistanceProvider(X, max_bytes=1 << 24)
        s = (1, 3, 5)
        P = X[:, list(s)]
        via_knn = LOF(k=10).score(P, knn=provider.knn_view(s, parent=(1, 3)))
        via_sq = LOF(k=10).score(P, sq_distances=provider.squared_distances(s))
        assert via_knn.tobytes() == via_sq.tobytes()

    def test_knn_view_close_to_direct(self, rng):
        # The substrate works in float32; the direct path in float64.
        X = rng.normal(size=(120, 6))
        provider = DistanceProvider(X, max_bytes=1 << 24)
        s = (0, 2, 4)
        P = X[:, list(s)]
        via_knn = LOF(k=10).score(P, knn=provider.knn_view(s))
        direct = LOF(k=10).score(P)
        np.testing.assert_allclose(via_knn, direct, rtol=1e-4)

    def test_knn_ignored_by_non_knn_detector_flag(self, rng):
        # A detector that does not opt in must ignore the view entirely.
        X = rng.normal(size=(40, 3))
        lof = LOF(k=5)
        try:
            lof.uses_knn_queries = False
            scores = lof.score(X, knn=object())
        finally:
            del lof.uses_knn_queries
        np.testing.assert_array_equal(scores, LOF(k=5).score(X))
