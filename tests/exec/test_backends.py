"""Tests for the execution backend layer (repro.exec)."""

import pytest

from repro.exceptions import ValidationError
from repro.exec import (
    BACKEND_ENV,
    BACKEND_NAMES,
    N_JOBS_ENV,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_n_jobs,
    resolve_backend,
)


# Module-level so the process backend can pickle them.
def _square(x):
    return x * x


def _add(payload, item):
    return payload + item


def _boom(x):
    raise ValueError(f"bad item {x}")


def _make(name):
    if name == "serial":
        return SerialBackend()
    if name == "thread":
        return ThreadBackend(n_jobs=2)
    return ProcessBackend(n_jobs=2)


@pytest.fixture(params=["serial", "thread"])
def cheap_backend(request):
    """The in-process backends — safe to spin up per test."""
    with _make(request.param) as backend:
        yield backend


class TestMapOrdered:
    def test_submission_order(self, cheap_backend):
        items = list(range(20))
        assert cheap_backend.map_ordered(_square, items) == [x * x for x in items]

    def test_empty_batch(self, cheap_backend):
        assert cheap_backend.map_ordered(_square, []) == []

    def test_payload_binding(self, cheap_backend):
        assert cheap_backend.map_ordered(_add, [1, 2, 3], payload=10) == [11, 12, 13]

    def test_none_payload_is_a_payload(self, cheap_backend):
        # ``payload=None`` must bind as fn(None, item), not fn(item).
        def first_is_none(payload, item):
            return payload is None

        if cheap_backend.name == "process":
            pytest.skip("local function is not picklable")
        assert cheap_backend.map_ordered(first_is_none, [0], payload=None) == [True]

    def test_task_exception_propagates(self, cheap_backend):
        with pytest.raises(ValueError, match="bad item"):
            cheap_backend.map_ordered(_boom, [1])

    def test_reusable_across_batches(self, cheap_backend):
        first = cheap_backend.map_ordered(_square, [1, 2])
        second = cheap_backend.map_ordered(_square, [3, 4])
        assert (first, second) == ([1, 4], [9, 16])

    def test_usable_after_close(self, cheap_backend):
        cheap_backend.map_ordered(_square, [2])
        cheap_backend.close()
        cheap_backend.close()  # idempotent
        assert cheap_backend.map_ordered(_square, [3]) == [9]


class TestThreadContextPropagation:
    def test_worker_tasks_see_callers_tracer(self):
        # Regression: worker threads don't inherit contextvars, which
        # used to detach the active tracer from every dispatched task —
        # a thread-backend run silently lost all detector spans.
        from repro.obs import Tracer, use_tracer
        from repro.obs.trace import span

        def traced(item):
            with span("task.unit", item=item):
                return item

        tracer = Tracer()
        with ThreadBackend(n_jobs=2) as backend:
            with use_tracer(tracer):
                with span("task.batch"):
                    backend.map_ordered(traced, [1, 2, 3])
        units = [s for s in tracer.spans if s.name == "task.unit"]
        batch = next(s for s in tracer.spans if s.name == "task.batch")
        assert len(units) == 3
        assert all(s.parent_id == batch.span_id for s in units)


class TestProcessBackend:
    def test_payload_shipped_once_and_results_ordered(self):
        with ProcessBackend(n_jobs=2) as backend:
            assert backend.map_ordered(_add, [1, 2, 3, 4], payload=100) == [
                101,
                102,
                103,
                104,
            ]
            # Same payload object: the pool (and its shipped payload) is
            # reused for the next wave.
            pool = backend._pool
            assert backend.map_ordered(_add, [5], payload=100) != []
            assert backend._pool is None or backend._pool is pool

    def test_exception_propagates(self):
        with ProcessBackend(n_jobs=2) as backend:
            with pytest.raises(ValueError, match="bad item"):
                backend.map_ordered(_boom, [7])


class TestResolveBackend:
    def test_known_names(self):
        for name in BACKEND_NAMES:
            backend = resolve_backend(name, n_jobs=2)
            assert isinstance(backend, ExecutionBackend)
            assert backend.name == name
            backend.close()

    def test_serial_forces_single_job(self):
        assert resolve_backend("serial", n_jobs=8).n_jobs == 1
        assert SerialBackend(n_jobs=8).n_jobs == 1

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown execution backend"):
            resolve_backend("gpu")

    def test_instance_passthrough(self):
        backend = ThreadBackend(n_jobs=3)
        assert resolve_backend(backend) is backend
        assert resolve_backend(backend, n_jobs=3) is backend
        with pytest.raises(ValidationError, match="n_jobs"):
            resolve_backend(backend, n_jobs=5)
        backend.close()

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend().name == "serial"

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        monkeypatch.setenv(N_JOBS_ENV, "3")
        backend = resolve_backend()
        assert (backend.name, backend.n_jobs) == ("thread", 3)
        backend.close()

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert resolve_backend("serial").name == "serial"

    def test_case_insensitive(self):
        assert resolve_backend("Serial").name == "serial"

    def test_invalid_n_jobs(self):
        with pytest.raises(ValidationError, match="n_jobs"):
            ThreadBackend(n_jobs=0)


class TestDefaultNJobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "5")
        assert default_n_jobs() == 5

    def test_env_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "-2")
        assert default_n_jobs() == 1

    def test_env_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(N_JOBS_ENV, "many")
        with pytest.raises(ValidationError, match=N_JOBS_ENV):
            default_n_jobs()

    def test_defaults_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv(N_JOBS_ENV, raising=False)
        assert default_n_jobs() >= 1
