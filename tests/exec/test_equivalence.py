"""Backend equivalence: identical numbers from serial, thread and process.

The hard requirement of the batch-first refactor is that the execution
backend is *invisible* in the results — same MAP, same recall, same
detector-call counts, byte-identical score vectors. These tests pin that
contract at the scorer level and end-to-end through a pipeline run.
"""

import numpy as np
import pytest

from repro.detectors import LOF
from repro.exec import resolve_backend
from repro.explainers import Beam, HiCS
from repro.pipeline import ExplanationPipeline
from repro.subspaces import SubspaceScorer
from repro.subspaces.enumeration import all_subspaces

BACKENDS = ["serial", "thread", "process"]


def _scorer(dataset, backend_name):
    return SubspaceScorer(
        dataset.X, LOF(k=15), backend=resolve_backend(backend_name, n_jobs=2)
    )


class TestScorerEquivalence:
    def test_score_vectors_byte_identical(self, hics_small):
        subspaces = list(all_subspaces(6, 2)) + [(0, 1, 2), (3, 4, 5)]
        reference = None
        for name in BACKENDS:
            scorer = _scorer(hics_small, name)
            try:
                batch = scorer.scores_many(subspaces)
            finally:
                scorer.close()
            stacked = np.vstack(batch)
            if reference is None:
                reference = stacked
            else:
                # Byte-identical, not merely allclose: the backend must
                # not change what is computed.
                assert stacked.tobytes() == reference.tobytes(), name

    def test_evaluation_counters_match(self, hics_small):
        subspaces = list(all_subspaces(5, 2))
        counts = {}
        for name in BACKENDS:
            scorer = _scorer(hics_small, name)
            try:
                scorer.scores_many(subspaces)
                scorer.scores_many(subspaces)  # second pass: all cache hits
                counts[name] = scorer.n_evaluations
            finally:
                scorer.close()
        assert counts["thread"] == counts["serial"]
        assert counts["process"] == counts["serial"]
        assert counts["serial"] == len(subspaces)


class TestPipelineEquivalence:
    @pytest.mark.parametrize("explainer_factory", [
        lambda: Beam(beam_width=10, result_size=10),
        lambda: HiCS(
            mc_iterations=15, candidate_cutoff=12, result_size=10, seed=3
        ),
    ])
    def test_rows_byte_identical_across_backends(
        self, hics_small, explainer_factory
    ):
        points = hics_small.ground_truth.points_at(2)[:2]
        rows = {}
        for name in BACKENDS:
            pipeline = ExplanationPipeline(
                LOF(k=15),
                explainer_factory(),
                backend=resolve_backend(name, n_jobs=2),
            )
            result = pipeline.run(hics_small, 2, points=points)
            rows[name] = (
                result.map,
                result.mean_recall,
                result.n_subspaces_scored,
                tuple(
                    (point, tuple(r.subspaces), tuple(r.scores))
                    for point, r in sorted(result.explanations.items())
                ),
            )
        assert rows["thread"] == rows["serial"]
        assert rows["process"] == rows["serial"]
