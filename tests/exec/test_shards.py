"""Sharded work-stealing maps, start-method selection, payload pinning."""

import gc
import weakref

import pytest

from repro.exceptions import ValidationError
from repro.exec import (
    MP_START_ENV,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.exec.backends import _NO_PAYLOAD, _STEALS


# Module-level so the process backend can pickle them.
def _double(x):
    return x * 2


def _add(payload, item):
    return payload + item


def _add_list(payload, item):
    return payload[0] + item


class _Payload:
    """A weakref-able payload carrier (lists and tuples are not)."""

    def __init__(self, value):
        self.value = value


def _add_obj(payload, item):
    return payload.value + item


@pytest.fixture(params=["serial", "thread", "process"])
def backend(request):
    made = {
        "serial": SerialBackend,
        "thread": lambda: ThreadBackend(n_jobs=2),
        "process": lambda: ProcessBackend(n_jobs=2),
    }[request.param]
    with made() as instance:
        yield instance


class TestMapShards:
    def test_flat_indices_cover_every_item(self, backend):
        shards = [[0, 1, 2], [3, 4], [5]]
        got = sorted(backend.map_shards(_double, shards))
        assert got == [(i, i * 2) for i in range(6)]

    def test_empty_shards(self, backend):
        assert list(backend.map_shards(_double, [])) == []
        assert list(backend.map_shards(_double, [[], []])) == []

    def test_payload_binds_through_shards(self, backend):
        got = sorted(backend.map_shards(_add, [[1, 2], [3]], payload=10))
        assert got == [(0, 11), (1, 12), (2, 13)]

    def test_unbalanced_shards_steal(self):
        # One loaded shard, one empty: the idle slot must steal — the
        # counter is the observable (results are schedule-independent).
        with ThreadBackend(n_jobs=2) as backend:
            before = _STEALS.value(backend="thread")
            got = sorted(backend.map_shards(_double, [list(range(12)), []]))
            assert got == [(i, i * 2) for i in range(12)]
            assert _STEALS.value(backend="thread") > before


class TestMpStart:
    def test_unset_means_platform_default(self, monkeypatch):
        monkeypatch.delenv(MP_START_ENV, raising=False)
        assert ProcessBackend._mp_context() is None

    @pytest.mark.parametrize("method", ["fork", "spawn", "forkserver"])
    def test_named_method_resolves(self, monkeypatch, method):
        monkeypatch.setenv(MP_START_ENV, method)
        context = ProcessBackend._mp_context()
        assert context is not None
        assert context.get_start_method() == method

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv(MP_START_ENV, "threads")
        with pytest.raises(ValidationError, match="REPRO_MP_START"):
            ProcessBackend._mp_context()

    def test_spawn_end_to_end(self, monkeypatch):
        monkeypatch.setenv(MP_START_ENV, "spawn")
        with ProcessBackend(n_jobs=1) as backend:
            assert backend.map_ordered(_double, [3, 4]) == [6, 8]


class TestPoolPayloadPinned:
    """Regression: the pool payload is compared by identity, not id().

    Keying the warm pool on ``id(payload)`` let the allocator recycle a
    dead payload's id for a new object and silently reuse a pool whose
    workers held the *old* payload. The fix pins the payload with a
    strong reference; these tests assert that observable.
    """

    def test_backend_keeps_payload_alive(self):
        with ProcessBackend(n_jobs=1) as backend:
            payload = _Payload(100)
            ghost = weakref.ref(payload)
            assert backend.map_ordered(_add_obj, [1, 2], payload=payload) \
                == [101, 102]
            assert backend._pool_payload is payload
            del payload
            gc.collect()
            # The caller dropped its reference mid-lifetime; the pool's
            # pin must keep the object (and its id) from being recycled.
            assert ghost() is not None
            assert backend.map_ordered(_add_obj, [3], payload=ghost()) == [103]

    def test_equal_but_distinct_payload_rebuilds_pool(self):
        with ProcessBackend(n_jobs=1) as backend:
            first = [100]
            assert backend.map_ordered(_add_list, [1], payload=first) == [101]
            pool = backend._pool
            second = [100]  # equal contents, different identity
            assert backend.map_ordered(_add_list, [1], payload=second) == [101]
            assert backend._pool is not pool
            assert backend._pool_payload is second

    def test_close_forgets_payload(self):
        with ProcessBackend(n_jobs=1) as backend:
            payload = [5]
            backend.map_ordered(_add_list, [1], payload=payload)
            backend.close()
            assert backend._pool_payload is _NO_PAYLOAD
