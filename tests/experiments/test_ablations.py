"""Tests for the ablation experiments (smoke profile, fast subsets)."""

import pytest

from repro.experiments import ablations, get_profile


@pytest.fixture(scope="module")
def smoke():
    return get_profile("smoke")


class TestDetectorSensitivity:
    def test_rows_cover_both_sweeps(self, smoke):
        report = ablations.detector_sensitivity(smoke)
        kinds = {r["ablation"] for r in report.rows}
        assert kinds == {"lof_k", "iforest_trees"}
        assert all(0.0 <= r["map"] <= 1.0 for r in report.rows)

    def test_lof_insensitive_to_k_on_easy_data(self, smoke):
        # Section 3.1's premise: the chosen detectors need no fine tuning.
        report = ablations.detector_sensitivity(smoke)
        lof_maps = [r["map"] for r in report.rows if r["ablation"] == "lof_k"]
        assert max(lof_maps) - min(lof_maps) <= 0.5


class TestRefOutPoolDimension:
    def test_four_fractions(self, smoke):
        report = ablations.refout_pool_dimension(smoke)
        assert len(report.rows) == 4
        settings = {r["setting"] for r in report.rows}
        assert "fraction=0.7" in settings  # the paper's setting


class TestHicsTestChoice:
    def test_both_tests_run(self, smoke):
        report = ablations.hics_test_choice(smoke)
        assert {r["setting"] for r in report.rows} == {"welch", "ks"}
        assert all(r["seconds"] > 0 for r in report.rows)


class TestCacheEffect:
    def test_shared_not_slower(self, smoke):
        report = ablations.cache_effect(smoke)
        seconds = {r["setting"]: r["seconds"] for r in report.rows}
        assert seconds["shared"] <= seconds["cold"] * 1.1


class TestFxVariants:
    def test_variants_and_dims_covered(self, smoke):
        report = ablations.fx_variants(smoke)
        settings = {r["setting"] for r in report.rows}
        assert "beam_fx@2d" in settings
        assert "hics_orig@2d" in settings


class TestLowProjectionVisibility:
    def test_one_row_per_detector(self, smoke):
        report = ablations.low_projection_visibility(smoke)
        assert {r["setting"] for r in report.rows} == {
            "lof",
            "fast_abod",
            "iforest",
        }

    def test_aucs_in_unit_interval(self, smoke):
        report = ablations.low_projection_visibility(smoke)
        for row in report.rows:
            assert 0.0 <= row["mean_projection_auc"] <= 1.0
            assert row["mean_projection_auc"] <= row["max_projection_auc"] <= 1.0

    def test_projections_weaker_than_blocks(self, smoke, hics_small):
        # Sanity link to the generator property: visibility in projections
        # must be strictly worse than in the relevant subspaces themselves
        # (where AUC is 1.0 by the separability tests).
        report = ablations.low_projection_visibility(smoke)
        lof_row = next(r for r in report.rows if r["setting"] == "lof")
        assert lof_row["mean_projection_auc"] < 1.0


class TestPredictiveVsDescriptive:
    def test_contenders_present(self, smoke):
        report = ablations.predictive_vs_descriptive(smoke)
        assert {r["setting"] for r in report.rows} == {
            "beam",
            "refout",
            "surrogate",
        }

    def test_surrogate_cheapest_per_point(self, smoke):
        # The predictive explainer's selling point: amortised cost.
        report = ablations.predictive_vs_descriptive(smoke)
        cost = {r["setting"]: r["seconds_per_point"] for r in report.rows}
        assert cost["surrogate"] <= cost["refout"]
