"""Tests for the table1/figure8 experiment artefacts (cheap, structural)."""

import pytest

from repro.experiments import figure8, table1


class TestTable1:
    @pytest.fixture(scope="class")
    def report(self):
        return table1.run("smoke")

    def test_row_per_dataset(self, report):
        assert [r["name"] for r in report.rows] == ["hics_14", "breast"]

    def test_synthetic_characteristics(self, report):
        synthetic = report.rows[0]
        assert synthetic["kind"] == "subspace"
        assert synthetic["n_outliers"] == 20
        assert synthetic["n_relevant_subspaces"] == 4
        assert synthetic["outliers_per_relevant_subspace"] == 5.0

    def test_real_characteristics(self, report):
        real = report.rows[1]
        assert real["kind"] == "full_space"
        assert real["relevant_feature_ratio_pct"] == 100.0
        assert real["contamination_pct"] == pytest.approx(10.1)

    def test_render_contains_table(self, report):
        text = report.render()
        assert "Table 1" in text
        assert "hics_14" in text

    def test_csv(self, report):
        csv_text = report.to_csv()
        assert csv_text.splitlines()[0].startswith("name,")
        assert len(csv_text.strip().splitlines()) == 3


class TestFigure8:
    @pytest.fixture(scope="class")
    def report(self):
        return figure8.run("smoke")

    def test_counts_by_dimensionality(self, report):
        row = report.rows[0]
        assert row["dataset"] == "hics_14"
        assert row["subspaces_2d"] == 1
        assert row["subspaces_3d"] == 1
        assert row["subspaces_4d"] == 1
        assert row["subspaces_5d"] == 1

    def test_contamination(self, report):
        # 20 outliers of 300 samples in the smoke-scaled dataset.
        assert report.rows[0]["contamination_pct"] == pytest.approx(6.7)

    def test_paper_profile_counts(self):
        report = figure8.run("paper")
        by_name = {r["dataset"]: r for r in report.rows}
        assert by_name["hics_100"]["contamination_pct"] == pytest.approx(14.3)
        totals = {
            name: sum(v for k, v in row.items() if k.startswith("subspaces_"))
            for name, row in by_name.items()
        }
        assert totals == {
            "hics_14": 4,
            "hics_23": 7,
            "hics_39": 12,
            "hics_70": 22,
            "hics_100": 31,
        }
