"""Unit tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.profile == "quick"

    def test_profile_option(self):
        args = build_parser().parse_args(["figure8", "--profile", "smoke"])
        assert args.profile == "smoke"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--profile", "huge"])

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args(["table1"])
        assert args.trace_out is None
        assert args.metrics_out is None

    def test_obs_flags_parsed(self):
        args = build_parser().parse_args(
            ["table1", "--trace-out", "t.jsonl", "--metrics-out", "m.txt"]
        )
        assert args.trace_out == "t.jsonl"
        assert args.metrics_out == "m.txt"

    def test_backend_flags_parsed(self):
        args = build_parser().parse_args(
            ["table1", "--backend", "thread", "--n-jobs", "3"]
        )
        assert args.backend == "thread"
        assert args.n_jobs == 3

    def test_backend_flags_default_to_environment(self):
        args = build_parser().parse_args(["table1"])
        assert args.backend is None
        assert args.n_jobs is None

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--backend", "gpu"])

    def test_ft_flags_default_to_environment(self):
        args = build_parser().parse_args(["table1"])
        assert args.checkpoint is None
        assert args.resume is False
        assert args.max_retries is None
        assert args.cell_timeout is None

    def test_ft_flags_parsed(self):
        args = build_parser().parse_args(
            [
                "figure9",
                "--checkpoint", "run.journal",
                "--resume",
                "--max-retries", "2",
                "--cell-timeout", "30.5",
            ]
        )
        assert args.checkpoint == "run.journal"
        assert args.resume is True
        assert args.max_retries == 2
        assert args.cell_timeout == 30.5


class TestMain:
    def test_table1_smoke(self, capsys):
        assert main(["table1", "--profile", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "hics_14" in out

    def test_figure8_with_csv(self, capsys, tmp_path):
        path = tmp_path / "fig8.csv"
        assert main(["figure8", "--profile", "smoke", "--csv", str(path)]) == 0
        assert path.exists()
        assert "dataset" in path.read_text().splitlines()[0]

    def test_trace_out_writes_linked_spans(self, capsys, tmp_path):
        import json

        path = tmp_path / "trace.jsonl"
        assert main(
            ["table1", "--profile", "smoke", "--trace-out", str(path)]
        ) == 0
        lines = path.read_text().strip().splitlines()
        assert lines
        spans = [json.loads(line) for line in lines]
        ids = {s["span_id"] for s in spans}
        for s in spans:
            assert s["name"]
            assert s["duration_s"] >= 0.0
            assert s["parent_id"] is None or s["parent_id"] in ids
        # the CLI wraps each experiment in a root span
        roots = [s for s in spans if s["parent_id"] is None]
        assert any(s["name"] == "experiment.run" for s in roots)

    def test_metrics_out_writes_prometheus_text(self, capsys, tmp_path):
        path = tmp_path / "metrics.txt"
        assert main(
            ["table1", "--profile", "smoke", "--metrics-out", str(path)]
        ) == 0
        text = path.read_text()
        assert "# TYPE repro_scorer_cache_hits_total counter" in text
        assert "repro_scorer_cache_misses_total" in text
        assert "repro_pipeline_cell_seconds_bucket" in text

    def test_no_flags_no_tracer_leak(self, capsys):
        from repro.obs.trace import NullTracer, get_tracer

        assert main(["table1", "--profile", "smoke"]) == 0
        assert isinstance(get_tracer(), NullTracer)

    def test_backend_flag_exports_environment(self, capsys, monkeypatch):
        import os

        from repro.exec import BACKEND_ENV, N_JOBS_ENV

        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.delenv(N_JOBS_ENV, raising=False)
        assert main(
            ["table1", "--profile", "smoke", "--backend", "thread", "--n-jobs", "2"]
        ) == 0
        assert os.environ[BACKEND_ENV] == "thread"
        assert os.environ[N_JOBS_ENV] == "2"

    def test_ft_flags_export_environment(self, capsys, monkeypatch, tmp_path):
        import os

        from repro.ft import (
            CELL_TIMEOUT_ENV,
            CHECKPOINT_ENV,
            MAX_RETRIES_ENV,
            RESUME_ENV,
        )

        for env in (CHECKPOINT_ENV, RESUME_ENV, MAX_RETRIES_ENV, CELL_TIMEOUT_ENV):
            monkeypatch.delenv(env, raising=False)
        path = str(tmp_path / "run.journal")
        assert main(
            [
                "table1", "--profile", "smoke",
                "--checkpoint", path,
                "--max-retries", "1",
                "--cell-timeout", "60",
            ]
        ) == 0
        assert os.environ[CHECKPOINT_ENV] == path
        # --checkpoint without --resume refuses pre-existing journals
        assert os.environ[RESUME_ENV] == "0"
        assert os.environ[MAX_RETRIES_ENV] == "1"
        assert os.environ[CELL_TIMEOUT_ENV] == "60.0"

    def test_resume_flag_exports_environment(self, capsys, monkeypatch, tmp_path):
        import os

        from repro.ft import CHECKPOINT_ENV, RESUME_ENV

        monkeypatch.delenv(CHECKPOINT_ENV, raising=False)
        monkeypatch.delenv(RESUME_ENV, raising=False)
        path = str(tmp_path / "run.journal")
        assert main(
            ["table1", "--profile", "smoke", "--checkpoint", path, "--resume"]
        ) == 0
        assert os.environ[RESUME_ENV] == "1"
