"""Unit tests for the CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"
        assert args.profile == "quick"

    def test_profile_option(self):
        args = build_parser().parse_args(["figure8", "--profile", "smoke"])
        assert args.profile == "smoke"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure99"])

    def test_rejects_unknown_profile(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--profile", "huge"])


class TestMain:
    def test_table1_smoke(self, capsys):
        assert main(["table1", "--profile", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "hics_14" in out

    def test_figure8_with_csv(self, capsys, tmp_path):
        path = tmp_path / "fig8.csv"
        assert main(["figure8", "--profile", "smoke", "--csv", str(path)]) == 0
        assert path.exists()
        assert "dataset" in path.read_text().splitlines()[0]
