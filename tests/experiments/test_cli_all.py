"""Tests for the CLI 'all' path using stubbed experiment runners.

The real 'all' invocation is minutes even at smoke scale; these tests
replace the experiment registry with recording stubs to verify the
orchestration contract: every experiment runs once, table2 reuses the
figure reports instead of re-running them, and per-experiment CSVs are
written.
"""

import pytest

import repro.cli as cli
from repro.experiments import ExperimentReport


@pytest.fixture()
def stubbed(monkeypatch):
    calls: list[tuple[str, object]] = []

    def make_stub(name):
        def run(profile):
            calls.append((name, profile))
            return ExperimentReport(
                experiment=name,
                title=f"stub {name}",
                profile=str(profile),
                sections=[f"{name} body"],
                rows=[{"experiment": name, "value": 1}],
            )

        return run

    stub_registry = {
        name: make_stub(name)
        for name in ("figure9", "figure10", "figure11", "table1")
    }

    def table2_run(profile, *, figure9_report=None, figure10_report=None,
                   figure11_report=None):
        calls.append(
            (
                "table2",
                (
                    figure9_report is not None,
                    figure10_report is not None,
                    figure11_report is not None,
                ),
            )
        )
        return ExperimentReport(
            experiment="table2",
            title="stub table2",
            profile=str(profile),
            sections=["table2 body"],
            rows=[{"experiment": "table2", "value": 2}],
        )

    stub_registry["table2"] = lambda profile: table2_run(profile)
    monkeypatch.setattr(cli, "EXPERIMENTS", stub_registry)
    monkeypatch.setattr(cli.table2, "run", table2_run)
    return calls


class TestAllPath:
    def test_runs_every_experiment_once(self, stubbed, capsys):
        assert cli.main(["all", "--profile", "smoke"]) == 0
        names = [name for name, _ in stubbed]
        assert names.count("figure9") == 1
        assert names.count("table2") == 1
        out = capsys.readouterr().out
        assert "stub figure10" in out

    def test_table2_reuses_figure_reports(self, stubbed):
        cli.main(["all", "--profile", "smoke"])
        table2_call = next(args for name, args in stubbed if name == "table2")
        assert table2_call == (True, True, True)

    def test_csv_per_experiment(self, stubbed, tmp_path):
        base = tmp_path / "out.csv"
        cli.main(["all", "--profile", "smoke", "--csv", str(base)])
        expected = {
            f"out_{name}.csv"
            for name in ("figure9", "figure10", "figure11", "table1", "table2")
        }
        assert {p.name for p in tmp_path.iterdir()} == expected


class TestSinglePath:
    def test_single_experiment_csv_uses_exact_path(self, stubbed, tmp_path):
        path = tmp_path / "exact.csv"
        cli.main(["table1", "--profile", "smoke", "--csv", str(path)])
        assert path.exists()
