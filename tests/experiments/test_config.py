"""Unit tests for experiment profiles."""

import pytest

from repro.detectors import FastABOD, IsolationForest, LOF
from repro.exceptions import ExperimentError
from repro.experiments import PROFILES, get_profile


class TestProfiles:
    def test_three_profiles_registered(self):
        assert set(PROFILES) == {"smoke", "quick", "paper"}

    def test_get_profile(self):
        assert get_profile("smoke").name == "smoke"

    def test_unknown_profile(self):
        with pytest.raises(ExperimentError):
            get_profile("turbo")

    def test_paper_profile_matches_section_31(self):
        paper = get_profile("paper")
        lof, abod, iforest = paper.detectors()
        assert isinstance(lof, LOF) and lof.k == 15
        assert isinstance(abod, FastABOD) and abod.k == 10
        assert isinstance(iforest, IsolationForest)
        assert iforest.n_trees == 100
        assert iforest.subsample_size == 256
        assert iforest.n_repeats == 10
        assert paper.explanation_dims == (2, 3, 4, 5)
        assert paper.synthetic_widths == (14, 23, 39, 70, 100)
        assert paper.max_outliers_per_run is None

    def test_explainer_factories_fresh_instances(self):
        profile = get_profile("smoke")
        factories = profile.point_explainer_factories()
        assert factories[0]() is not factories[0]()

    def test_smoke_overrides_applied(self):
        smoke = get_profile("smoke")
        beam = smoke.point_explainer_factories()[0]()
        assert beam.beam_width == 15

    def test_scaled_copy(self):
        scaled = get_profile("smoke").scaled(explanation_dims=(2,))
        assert scaled.explanation_dims == (2,)
        assert get_profile("smoke").explanation_dims == (2, 3)

    def test_parallelism_defaults(self):
        # Scaled profiles run serially; the paper profile fans out.
        assert get_profile("smoke").n_jobs == 1
        assert get_profile("quick").n_jobs == 1
        assert get_profile("paper").n_jobs > 1


class TestPointSelection:
    def test_cap_applied(self, hics_small):
        profile = get_profile("smoke").scaled(max_outliers_per_run=2)
        points = profile.select_points(hics_small, 2)
        at_dim = set(hics_small.ground_truth.points_at(2))
        selected_at_dim = [p for p in points if p in at_dim]
        assert len(selected_at_dim) == 2
        assert 2 <= len(points) <= 4

    def test_no_cap_returns_all_outliers(self, hics_small):
        profile = get_profile("smoke").scaled(max_outliers_per_run=None)
        assert profile.select_points(hics_small, 2) == hics_small.outliers

    def test_datasets_cached_across_calls(self):
        profile = get_profile("smoke")
        assert profile.synthetic_datasets()[0] is profile.synthetic_datasets()[0]
