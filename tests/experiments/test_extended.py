"""Tests for the extended experiment sweep."""

import pytest

from repro.experiments import extended, get_profile


@pytest.fixture(scope="module")
def report():
    return extended.run(get_profile("smoke"))


def _map_of(rows, dataset, pipeline):
    for row in rows:
        if row["dataset"] == dataset and row["pipeline"] == pipeline:
            return row["map"]
    raise AssertionError(f"missing cell {dataset}/{pipeline}")


class TestExtendedSweep:
    def test_all_ten_pipelines_per_dataset(self, report):
        datasets = {row["dataset"] for row in report.rows}
        assert datasets == {"hics_14", "breast"}
        pipelines = {
            row["pipeline"] for row in report.rows if row["dataset"] == "hics_14"
        }
        assert len(pipelines) == 10

    def test_surrogate_dichotomy(self, report):
        # Predictive explanations work where the full space already shows
        # the outlier; they cannot see masked subspace outliers.
        assert _map_of(report.rows, "breast", "surrogate+lof") >= 0.8
        assert _map_of(report.rows, "hics_14", "surrogate+lof") <= 0.2

    def test_lof_dominates_loda(self, report):
        for dataset in ("hics_14", "breast"):
            for explainer in ("beam", "lookout"):
                lof = _map_of(report.rows, dataset, f"{explainer}+lof")
                loda = _map_of(report.rows, dataset, f"{explainer}+loda")
                assert lof >= loda

    def test_render_has_one_panel_per_dataset(self, report):
        text = report.render()
        assert text.count("extended pipelines") == 2
