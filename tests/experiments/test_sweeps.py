"""Integration tests for the figure sweeps and Table 2, at micro scale.

A further-scaled copy of the smoke profile keeps each sweep to seconds
while exercising the full code path: grid execution, per-dataset panels,
report rendering, CSV rows, and the Table 2 Pareto distillation chained
from real figure reports.
"""

import pytest

from repro.experiments import figure9, figure10, figure11, get_profile, table2


@pytest.fixture(scope="module")
def micro_profile():
    return get_profile("smoke").scaled(
        name="micro",
        synthetic_samples=200,
        explanation_dims=(2,),
        max_outliers_per_run=2,
        realistic_overrides={
            "breast": {"n_features": 6, "gt_dimensionalities": (2,)},
        },
    )


@pytest.fixture(scope="module")
def fig9(micro_profile):
    return figure9.run(micro_profile)


@pytest.fixture(scope="module")
def fig10(micro_profile):
    return figure10.run(micro_profile)


@pytest.fixture(scope="module")
def fig11(micro_profile):
    return figure11.run(micro_profile)


class TestFigure9:
    def test_panel_per_dataset(self, fig9):
        assert fig9.render().count("— MAP") == 2

    def test_all_cells_present(self, fig9):
        # 2 datasets x 1 dim x 6 pipelines.
        assert len(fig9.rows) == 12
        assert all(0.0 <= row["map"] <= 1.0 for row in fig9.rows)

    def test_rows_carry_pipeline_label(self, fig9):
        labels = {row["pipeline"] for row in fig9.rows}
        assert "beam+lof" in labels
        assert "refout+iforest" in labels

    def test_csv_round_trip(self, fig9, tmp_path):
        path = tmp_path / "fig9.csv"
        fig9.write_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 13


class TestFigure10:
    def test_all_cells_present(self, fig10):
        assert len(fig10.rows) == 12
        labels = {row["pipeline"] for row in fig10.rows}
        assert "hics+lof" in labels and "lookout+fast_abod" in labels

    def test_summary_pipelines_record_results(self, fig10):
        assert all(row["n_points"] >= 1 for row in fig10.rows)


class TestFigure11:
    def test_runtime_rows_positive(self, fig11):
        assert len(fig11.rows) == 24  # 2 datasets x 12 pipelines x 1 dim
        assert all(row["seconds"] > 0 for row in fig11.rows)

    def test_subspace_counts_recorded(self, fig11):
        assert all(row["n_subspaces_scored"] > 0 for row in fig11.rows)


class TestTable2Chained:
    def test_reuses_reports(self, micro_profile, fig9, fig10, fig11):
        report = table2.run(
            micro_profile,
            figure9_report=fig9,
            figure10_report=fig10,
            figure11_report=fig11,
        )
        assert report.rows
        # Every cell names a point pipeline and a summary pipeline at 2d
        # on the easy micro datasets.
        for row in report.rows:
            assert row["dimensionality"] == 2
            assert row["point_pipeline"]
            assert row["summary_pipeline"]
        ratios = {row["ratio"] for row in report.rows}
        assert "100%" in ratios
