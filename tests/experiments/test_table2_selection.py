"""Unit tests for the Table 2 Pareto selection rule."""

import pytest

from repro.experiments.table2 import select_tradeoff


def row(dataset, pipeline, dim, map_, seconds):
    explainer, detector = pipeline.split("+")
    return {
        "dataset": dataset,
        "pipeline": pipeline,
        "explainer": explainer,
        "detector": detector,
        "dimensionality": dim,
        "map": map_,
        "seconds": seconds,
    }


class TestSelectTradeoff:
    def test_highest_map_wins(self):
        rows = [
            row("d", "beam+lof", 2, 1.0, 5.0),
            row("d", "refout+lof", 2, 0.5, 1.0),
        ]
        assert select_tradeoff(rows, ["d"], 2, {}) == "beam+lof"

    def test_tie_broken_by_speed(self):
        rows = [
            row("d", "beam+lof", 2, 0.98, 5.0),
            row("d", "refout+lof", 2, 1.0, 1.0),
        ]
        assert select_tradeoff(rows, ["d"], 2, {}) == "refout+lof"

    def test_generic_preferred_on_near_tie(self):
        rows = [
            row("d", "hics+lof", 2, 1.0, 1.0),
            row("d", "lookout+lof", 2, 0.97, 1.5),
        ]
        assert select_tradeoff(rows, ["d"], 2, {}) == "lookout+lof"

    def test_specialist_kept_when_clearly_better(self):
        rows = [
            row("d", "hics+lof", 2, 1.0, 1.0),
            row("d", "lookout+lof", 2, 0.4, 1.0),
        ]
        assert select_tradeoff(rows, ["d"], 2, {}) == "hics+lof"

    def test_zero_map_reports_none(self):
        rows = [
            row("d", "beam+lof", 2, 0.0, 1.0),
            row("d", "refout+lof", 2, 0.01, 1.0),
        ]
        assert select_tradeoff(rows, ["d"], 2, {}) is None

    def test_runtime_index_overrides_seconds(self):
        rows = [
            row("d", "beam+lof", 2, 1.0, 0.1),
            row("d", "refout+lof", 2, 1.0, 0.2),
        ]
        runtime = {("d", "beam+lof", 2): 9.0, ("d", "refout+lof", 2): 1.0}
        assert select_tradeoff(rows, ["d"], 2, runtime) == "refout+lof"

    def test_aggregates_across_datasets(self):
        rows = [
            row("a", "beam+lof", 2, 1.0, 1.0),
            row("b", "beam+lof", 2, 0.0, 1.0),
            row("a", "refout+lof", 2, 0.7, 1.0),
            row("b", "refout+lof", 2, 0.7, 1.0),
        ]
        assert select_tradeoff(rows, ["a", "b"], 2, {}) == "refout+lof"

    def test_empty_cell(self):
        assert select_tradeoff([], ["d"], 2, {}) is None

    def test_other_dimensionalities_ignored(self):
        rows = [
            row("d", "beam+lof", 3, 1.0, 1.0),
        ]
        assert select_tradeoff(rows, ["d"], 2, {}) is None
