"""Unit tests for explainer result types (RankedSubspaces, PointExplanations)."""

import pytest

from repro.exceptions import ValidationError
from repro.explainers import PointExplanations, RankedSubspaces
from repro.subspaces import Subspace


def ranking(*pairs):
    return RankedSubspaces.from_pairs([(Subspace(s), v) for s, v in pairs])


class TestRankedSubspaces:
    def test_from_pairs_preserves_order(self):
        r = ranking(([0, 1], 0.9), ([2, 3], 0.5))
        assert r.subspaces[0] == (0, 1)
        assert r.scores == (0.9, 0.5)

    def test_len_iter_getitem(self):
        r = ranking(([0], 1.0), ([1], 0.5))
        assert len(r) == 2
        assert list(r) == [(Subspace([0]), 1.0), (Subspace([1]), 0.5)]
        assert r[1] == (Subspace([1]), 0.5)

    def test_top(self):
        r = ranking(([0], 3.0), ([1], 2.0), ([2], 1.0))
        assert len(r.top(2)) == 2
        assert r.top(0).subspaces == ()
        with pytest.raises(ValidationError):
            r.top(-1)

    def test_rank_of(self):
        r = ranking(([0, 1], 1.0), ([2, 3], 0.5))
        assert r.rank_of([3, 2]) == 1
        assert r.rank_of([9]) is None

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValidationError):
            RankedSubspaces(subspaces=(Subspace([0]),), scores=(1.0, 2.0))

    def test_repr_preview(self):
        r = ranking(*[([i], float(-i)) for i in range(5)])
        text = repr(r)
        assert "5 entries" in text
        assert "..." in text


class TestPointExplanations:
    def test_mapping_protocol(self):
        exp = PointExplanations({3: ranking(([0], 1.0))})
        assert len(exp) == 1
        assert 3 in exp
        assert list(exp) == [3]
        assert exp[3].subspaces[0] == (0,)

    def test_rejects_wrong_value_type(self):
        with pytest.raises(ValidationError):
            PointExplanations({0: [(0, 1)]})

    def test_keys_coerced_to_int(self):
        import numpy as np

        exp = PointExplanations({np.int64(5): ranking(([1], 0.0))})
        assert 5 in exp
