"""Unit tests for the Beam point explainer."""

import numpy as np
import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.explainers import Beam
from repro.subspaces import Subspace, SubspaceScorer


@pytest.fixture()
def scorer(subspace_outlier_data):
    X, _, _ = subspace_outlier_data
    return SubspaceScorer(X, LOF(k=10))


class TestBeamRecovery:
    def test_recovers_planted_2d_subspace(self, scorer, subspace_outlier_data):
        _, point, subspace = subspace_outlier_data
        result = Beam(beam_width=10).explain(scorer, point, 2)
        assert result.subspaces[0] == subspace

    def test_recovers_planted_3d_subspace(self):
        gen = np.random.default_rng(9)
        X = gen.normal(size=(120, 6))
        X[0, [0, 2, 5]] = [6.0, -6.0, 6.0]
        scorer = SubspaceScorer(X, LOF(k=10))
        result = Beam(beam_width=20).explain(scorer, 0, 3)
        assert result.subspaces[0] == (0, 2, 5)

    def test_stage1_is_exhaustive(self, scorer):
        # At dimensionality 2, Beam must consider all C(6,2)=15 subspaces.
        before = scorer.n_evaluations
        result = Beam(beam_width=100, result_size=100).explain(scorer, 0, 2)
        assert scorer.n_evaluations - before == 15
        assert len(result) == 15

    def test_scores_descending(self, scorer):
        result = Beam(beam_width=10).explain(scorer, 0, 2)
        assert all(a >= b for a, b in zip(result.scores, result.scores[1:]))


class TestBeamVariants:
    def test_fx_returns_fixed_dimensionality(self, scorer):
        result = Beam(beam_width=5, fixed_dimensionality=True).explain(scorer, 0, 3)
        assert all(s.dimensionality == 3 for s in result.subspaces)

    def test_global_list_returns_varying_dimensionality(self):
        # Outlier visible in 2d: with the original Beam the 2d subspace must
        # survive into the global list even when 3d explanations are asked.
        gen = np.random.default_rng(5)
        X = gen.normal(size=(100, 5))
        X[0, [1, 3]] = [9.0, -9.0]
        scorer = SubspaceScorer(X, LOF(k=10))
        result = Beam(beam_width=10, fixed_dimensionality=False).explain(
            scorer, 0, 3
        )
        assert result.rank_of((1, 3)) is not None
        dims = {s.dimensionality for s in result.subspaces}
        assert dims == {2, 3}

    def test_result_size_truncates(self, scorer):
        result = Beam(beam_width=100, result_size=3).explain(scorer, 0, 2)
        assert len(result) == 3

    def test_dimensionality_one(self, scorer):
        result = Beam(beam_width=5).explain(scorer, 0, 1)
        assert all(s.dimensionality == 1 for s in result.subspaces)


class TestBeamInterface:
    def test_explain_points(self, scorer):
        result = Beam(beam_width=5).explain_points(scorer, [0, 1], 2)
        assert set(result) == {0, 1}

    def test_rejects_dimensionality_above_width(self, scorer):
        with pytest.raises(ValidationError):
            Beam().explain(scorer, 0, 7)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValidationError):
            Beam(beam_width=0)

    def test_name_and_repr(self):
        beam = Beam(beam_width=7)
        assert beam.name == "beam"
        assert "beam_width=7" in repr(beam)
