"""Unit tests for the cross-detector HiCS contrast cache."""

import json

import numpy as np
import pytest

from repro.detectors import LOF, KNNDetector
from repro.explainers import HiCS
from repro.explainers import contrast_cache as cc_module
from repro.explainers.contrast_cache import (
    HICS_CACHE_ENV,
    ContrastCache,
    resolve_contrast_cache,
)
from repro.subspaces import SubspaceScorer


@pytest.fixture(autouse=True)
def _fresh_shared_caches(monkeypatch):
    """Isolate the process-global cache registry per test."""
    monkeypatch.setattr(cc_module, "_SHARED", {})


@pytest.fixture()
def correlated_data():
    gen = np.random.default_rng(21)
    latent = gen.normal(size=150)
    X = np.column_stack(
        [
            latent + gen.normal(0, 0.1, 150),
            latent + gen.normal(0, 0.1, 150),
            gen.normal(size=150),
            gen.normal(size=150),
        ]
    )
    X[0, :2] = [2.5, -2.5]
    return X


KEY = ("hics-search", 12345, (10, 4), ("seed", 0))
RESULT = [((0, 1), 0.875), ((2, 3), 0.25)]


class TestContrastCacheStore:
    def test_miss_then_hit(self):
        cache = ContrastCache()
        assert cache.get(KEY) is None
        cache.put(KEY, RESULT)
        assert cache.get(KEY) == RESULT
        assert cache.stats() == {"hits": 1, "misses": 1, "entries": 1}

    def test_hit_returns_a_copy(self):
        cache = ContrastCache()
        cache.put(KEY, RESULT)
        got = cache.get(KEY)
        got.append(((9,), 0.0))
        assert cache.get(KEY) == RESULT

    def test_key_isolation(self):
        cache = ContrastCache()
        cache.put(KEY, RESULT)
        other = KEY[:-1] + (("seed", 1),)
        assert cache.get(other) is None

    def test_clear_and_len(self):
        cache = ContrastCache()
        cache.put(KEY, RESULT)
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0
        assert cache.get(KEY) is None

    def test_put_normalises_numpy_values(self):
        cache = ContrastCache()
        cache.put(
            KEY,
            [((np.int64(0), np.int64(1)), np.float64(0.5))],
        )
        got = cache.get(KEY)
        assert got == [((0, 1), 0.5)]
        assert all(isinstance(f, int) for f in got[0][0])
        assert isinstance(got[0][1], float)


class TestDiskPersistence:
    def test_roundtrip_across_instances(self, tmp_path):
        first = ContrastCache(directory=tmp_path)
        first.put(KEY, RESULT)
        fresh = ContrastCache(directory=tmp_path)  # new process, in effect
        assert fresh.get(KEY) == RESULT
        assert fresh.stats()["hits"] == 1

    def test_floats_roundtrip_exactly(self, tmp_path):
        value = 1.0 - 0.123456789012345678e-3  # not exactly representable input
        first = ContrastCache(directory=tmp_path)
        first.put(KEY, [((0, 1), value)])
        fresh = ContrastCache(directory=tmp_path)
        assert fresh.get(KEY)[0][1] == float(value)

    def test_torn_file_is_a_miss(self, tmp_path):
        cache = ContrastCache(directory=tmp_path)
        cache.put(KEY, RESULT)
        (path,) = tmp_path.glob("hics-contrast-*.json")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        fresh = ContrastCache(directory=tmp_path)
        assert fresh.get(KEY) is None

    def test_key_mismatch_in_payload_is_a_miss(self, tmp_path):
        cache = ContrastCache(directory=tmp_path)
        cache.put(KEY, RESULT)
        (path,) = tmp_path.glob("hics-contrast-*.json")
        payload = json.loads(path.read_text())
        payload["key"] = "something else"
        path.write_text(json.dumps(payload))
        fresh = ContrastCache(directory=tmp_path)
        assert fresh.get(KEY) is None


class TestResolveContrastCache:
    @pytest.mark.parametrize("value", ["0", "false", "off", "no", " OFF "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(HICS_CACHE_ENV, value)
        assert resolve_contrast_cache() is None

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", ""])
    def test_memory_values_share_one_instance(self, monkeypatch, value):
        monkeypatch.setenv(HICS_CACHE_ENV, value)
        cache = resolve_contrast_cache()
        assert cache is not None and cache.directory is None
        assert resolve_contrast_cache() is cache

    def test_default_is_memory(self, monkeypatch):
        monkeypatch.delenv(HICS_CACHE_ENV, raising=False)
        cache = resolve_contrast_cache()
        assert cache is not None and cache.directory is None

    def test_directory_value(self, monkeypatch, tmp_path):
        monkeypatch.setenv(HICS_CACHE_ENV, str(tmp_path))
        cache = resolve_contrast_cache()
        assert cache is not None and cache.directory == tmp_path
        assert resolve_contrast_cache() is cache

    def test_explicit_setting_overrides_env(self, monkeypatch):
        monkeypatch.setenv(HICS_CACHE_ENV, "0")
        assert resolve_contrast_cache("1") is not None


class TestHiCSIntegration:
    def test_second_detector_hits_the_cache(self, monkeypatch, correlated_data):
        monkeypatch.setenv(HICS_CACHE_ENV, "1")
        hics = HiCS(mc_iterations=20, seed=0)
        summaries = []
        for detector in (LOF(k=10), KNNDetector(k=10)):
            scorer = SubspaceScorer(correlated_data, detector)
            summaries.append(hics.summarize(scorer, [0], 2))
        cache = resolve_contrast_cache()
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1
        assert summaries[0].subspaces == summaries[1].subspaces
        assert summaries[0].scores == summaries[1].scores

    def test_unseeded_search_never_cached(self, monkeypatch, correlated_data):
        monkeypatch.setenv(HICS_CACHE_ENV, "1")
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        HiCS(mc_iterations=10, seed=None).summarize(scorer, [0], 2)
        cache = resolve_contrast_cache()
        assert cache.stats() == {"hits": 0, "misses": 0, "entries": 0}

    def test_disk_cache_spans_fresh_caches(
        self, monkeypatch, tmp_path, correlated_data
    ):
        monkeypatch.setenv(HICS_CACHE_ENV, str(tmp_path))
        hics = HiCS(mc_iterations=20, seed=0)
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        first = hics.summarize(scorer, [0], 2)
        assert list(tmp_path.glob("hics-contrast-*.json"))
        # Simulate a resumed run: a brand-new in-memory cache over the
        # same directory serves the search from disk.
        cc_module._SHARED = {}
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        second = hics.summarize(scorer, [0], 2)
        cache = resolve_contrast_cache()
        assert cache.stats()["hits"] == 1
        assert first.subspaces == second.subspaces
        assert first.scores == second.scores

    def test_cache_off_matches_cache_on(self, monkeypatch, correlated_data):
        hics = HiCS(mc_iterations=20, seed=0)
        monkeypatch.setenv(HICS_CACHE_ENV, "0")
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        off = hics.summarize(scorer, [0], 2)
        monkeypatch.setenv(HICS_CACHE_ENV, "1")
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        on_cold = hics.summarize(scorer, [0], 2)
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        on_warm = hics.summarize(scorer, [0], 2)
        assert off.subspaces == on_cold.subspaces == on_warm.subspaces
        assert off.scores == on_cold.scores == on_warm.scores
