"""Unit tests for the group-based explainer extension."""

from collections import Counter

import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.explainers import GroupExplainer
from repro.subspaces import SubspaceScorer


@pytest.fixture(scope="module")
def scorer(hics_small):
    return SubspaceScorer(hics_small.X, LOF(k=15))


@pytest.fixture(scope="module")
def groups(hics_small, scorer):
    return GroupExplainer(max_groups=8, seed=0).explain_groups(
        scorer, hics_small.outliers, dimensionality=2
    )


class TestGrouping:
    def test_partitions_all_points(self, hics_small, groups):
        covered = sorted(p for g in groups for p in g.points)
        assert covered == list(hics_small.outliers)

    def test_groups_are_pure(self, hics_small, groups):
        # Each group should be dominated by outliers of one block.
        gt = hics_small.ground_truth
        pure = 0
        for group in groups:
            truths = [tuple(gt.relevant_for(p)[0]) for p in group.points]
            pure += Counter(truths).most_common(1)[0][1]
        assert pure / len(hics_small.outliers) >= 0.8

    def test_explanations_align_with_majority_block(self, hics_small, groups):
        gt = hics_small.ground_truth
        aligned = 0
        for group in groups:
            truths = [tuple(gt.relevant_for(p)[0]) for p in group.points]
            majority, _ = Counter(truths).most_common(1)[0]
            top = group.explanation.subspaces[0]
            aligned += set(top) <= set(majority)
        assert aligned / len(groups) >= 0.7

    def test_groups_sorted_by_strength(self, groups):
        tops = [g.explanation.scores[0] for g in groups]
        assert tops == sorted(tops, reverse=True)

    def test_deterministic(self, hics_small, scorer):
        a = GroupExplainer(max_groups=8, seed=3).explain_groups(
            scorer, hics_small.outliers, 2
        )
        b = GroupExplainer(max_groups=8, seed=3).explain_groups(
            scorer, hics_small.outliers, 2
        )
        assert [g.points for g in a] == [g.points for g in b]


class TestInterface:
    def test_single_point(self, scorer, hics_small):
        point = hics_small.outliers[0]
        groups = GroupExplainer(seed=0).explain_groups(scorer, [point], 2)
        assert len(groups) == 1
        assert groups[0].points == (point,)

    def test_requested_dimensionality(self, scorer, hics_small):
        groups = GroupExplainer(max_groups=4, seed=0).explain_groups(
            scorer, hics_small.outliers[:6], 3
        )
        for group in groups:
            assert all(s.dimensionality == 3 for s in group.explanation.subspaces)

    def test_rejects_empty_points(self, scorer):
        with pytest.raises(ValidationError):
            GroupExplainer().explain_groups(scorer, [], 2)

    def test_rejects_dim_above_width(self, scorer, hics_small):
        with pytest.raises(ValidationError):
            GroupExplainer().explain_groups(scorer, hics_small.outliers, 99)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValidationError):
            GroupExplainer(signature_threshold=-1.0)
