"""Unit tests for the HiCS summariser."""

import numpy as np
import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.explainers import HiCS
from repro.explainers.contrast_cache import HICS_CACHE_ENV
from repro.explainers.hics import _ContrastEstimator
from repro.stats.batch import STATS_BATCH_ENV
from repro.subspaces import Subspace, SubspaceScorer
from repro.utils.rng import as_rng


@pytest.fixture(scope="module")
def correlated_data():
    """Features (0, 1) strongly dependent; 2 and 3 independent noise.

    Point 0 breaks the (0, 1) dependence while staying marginally normal.
    """
    gen = np.random.default_rng(1)
    latent = gen.normal(size=250)
    X = np.column_stack(
        [
            latent + gen.normal(0, 0.1, 250),
            latent + gen.normal(0, 0.1, 250),
            gen.normal(size=250),
            gen.normal(size=250),
        ]
    )
    X[0, :2] = [2.5, -2.5]
    return X


class TestContrastEstimator:
    def make(self, X, seed=0, test="welch", mc=150):
        return _ContrastEstimator(
            X, alpha=0.15, mc_iterations=mc, test=test, rng=as_rng(seed)
        )

    def test_dependent_beats_independent(self, correlated_data):
        estimator = self.make(correlated_data)
        assert estimator.contrast(Subspace([0, 1])) > estimator.contrast(
            Subspace([2, 3])
        )

    def test_independent_contrast_low(self, correlated_data):
        estimator = self.make(correlated_data)
        assert estimator.contrast(Subspace([2, 3])) < 0.6

    def test_dependent_contrast_high(self, correlated_data):
        estimator = self.make(correlated_data)
        assert estimator.contrast(Subspace([0, 1])) > 0.9

    def test_ks_variant(self, correlated_data):
        estimator = self.make(correlated_data, test="ks")
        assert estimator.contrast(Subspace([0, 1])) > estimator.contrast(
            Subspace([2, 3])
        )

    def test_contrast_in_unit_interval(self, correlated_data):
        estimator = self.make(correlated_data, mc=50)
        for s in [(0, 1), (0, 2), (1, 3), (0, 1, 2)]:
            assert 0.0 <= estimator.contrast(Subspace(s)) <= 1.0

    def test_requires_two_features(self, correlated_data):
        estimator = self.make(correlated_data)
        with pytest.raises(ValidationError):
            estimator.contrast(Subspace([0]))


class TestHiCSSummaries:
    def test_finds_correlated_subspace(self, correlated_data):
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        summary = HiCS(mc_iterations=50, seed=0).summarize(scorer, [0], 2)
        assert summary.subspaces[0] == (0, 1)

    def test_fx_fixed_dimensionality(self, correlated_data):
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        summary = HiCS(mc_iterations=30, seed=0).summarize(scorer, [0], 3)
        assert all(s.dimensionality == 3 for s in summary.subspaces)

    def test_varying_dimensionality_variant(self, correlated_data):
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        summary = HiCS(
            mc_iterations=30, seed=0, fixed_dimensionality=False
        ).summarize(scorer, [0], 3)
        dims = {s.dimensionality for s in summary.subspaces}
        assert 2 in dims  # the strong 2d subspace survives pruning

    def test_deterministic(self, correlated_data):
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        a = HiCS(mc_iterations=30, seed=5).summarize(scorer, [0], 2)
        b = HiCS(mc_iterations=30, seed=5).summarize(scorer, [0], 2)
        assert a.subspaces == b.subspaces

    def test_result_size(self, correlated_data):
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        summary = HiCS(mc_iterations=20, seed=0, result_size=2).summarize(
            scorer, [0], 2
        )
        assert len(summary) <= 2


class TestPruneDominated:
    def test_dominated_subspace_removed(self):
        pairs = [
            (Subspace([0, 1]), 0.5),
            (Subspace([0, 1, 2]), 0.9),
        ]
        kept = HiCS._prune_dominated(pairs)
        assert kept == [(Subspace([0, 1, 2]), 0.9)]

    def test_stronger_subset_kept(self):
        pairs = [
            (Subspace([0, 1]), 0.9),
            (Subspace([0, 1, 2]), 0.5),
        ]
        kept = HiCS._prune_dominated(pairs)
        assert (Subspace([0, 1]), 0.9) in kept
        assert (Subspace([0, 1, 2]), 0.5) in kept  # not dominated (lower dim)


class TestBatchedScalarEquivalence:
    """The batched contrast engine vs the REPRO_STATS_BATCH=0 kill-switch."""

    def estimators(self, X, test):
        """One batched and one scalar estimator over identical RNG state."""
        kwargs = dict(alpha=0.15, mc_iterations=60, test=test)
        return (
            _ContrastEstimator(X, rng=as_rng(3), batched=True, **kwargs),
            _ContrastEstimator(X, rng=as_rng(3), batched=False, **kwargs),
        )

    def test_ks_contrast_bit_identical(self, correlated_data):
        batched, scalar = self.estimators(correlated_data, "ks")
        for s in [(0, 1), (0, 2), (2, 3), (0, 1, 2), (1, 2, 3)]:
            assert batched.contrast(Subspace(s)) == scalar.contrast(Subspace(s))

    def test_welch_contrast_agrees_to_last_ulp(self, correlated_data):
        batched, scalar = self.estimators(correlated_data, "welch")
        for s in [(0, 1), (0, 2), (2, 3), (0, 1, 2), (1, 2, 3)]:
            assert batched.contrast(Subspace(s)) == pytest.approx(
                scalar.contrast(Subspace(s)), rel=1e-12, abs=1e-12
            )

    def test_ks_contrast_bit_identical_under_ties(self):
        # Quantised features: every marginal has tie runs.
        gen = np.random.default_rng(11)
        X = np.round(gen.normal(size=(120, 4)), 1)
        batched, scalar = self.estimators(X, "ks")
        for s in [(0, 1), (1, 2), (0, 2, 3)]:
            assert batched.contrast(Subspace(s)) == scalar.contrast(Subspace(s))

    @pytest.mark.parametrize("test", ["welch", "ks"])
    def test_summaries_identical_across_kill_switch(
        self, monkeypatch, correlated_data, test
    ):
        monkeypatch.setenv(HICS_CACHE_ENV, "0")
        hics = HiCS(mc_iterations=30, seed=0, test=test)
        monkeypatch.setenv(STATS_BATCH_ENV, "1")
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        batched = hics.summarize(scorer, [0], 3)
        monkeypatch.setenv(STATS_BATCH_ENV, "0")
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        scalar = hics.summarize(scorer, [0], 3)
        assert batched.subspaces == scalar.subspaces

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_cache_on_off_identical_per_backend(
        self, monkeypatch, correlated_data, backend
    ):
        hics = HiCS(mc_iterations=20, seed=0)
        results = {}
        for mode in ("0", "1"):
            monkeypatch.setenv(HICS_CACHE_ENV, mode)
            scorer = SubspaceScorer(
                correlated_data, LOF(k=10), backend=backend
            )
            results[mode] = hics.summarize(scorer, [0], 2)
            scorer.close()
        assert results["0"].subspaces == results["1"].subspaces
        assert results["0"].scores == results["1"].scores


class TestHiCSInterface:
    def test_rejects_dimensionality_one(self, correlated_data):
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        with pytest.raises(ValidationError, match="at least 2"):
            HiCS().summarize(scorer, [0], 1)

    def test_rejects_bad_test(self):
        with pytest.raises(ValidationError):
            HiCS(test="anova")

    def test_rejects_empty_points(self, correlated_data):
        scorer = SubspaceScorer(correlated_data, LOF(k=10))
        with pytest.raises(ValidationError):
            HiCS().summarize(scorer, [], 2)

    def test_name(self):
        assert HiCS().name == "hics"
