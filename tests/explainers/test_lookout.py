"""Unit tests for the LookOut summariser."""

import numpy as np
import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.explainers import LookOut
from repro.subspaces import Subspace, SubspaceScorer


@pytest.fixture()
def two_outlier_scorer():
    """Two outliers, each breaking a different planted correlation."""
    gen = np.random.default_rng(8)
    a, b = gen.normal(size=120), gen.normal(size=120)
    X = np.column_stack(
        [a, a + gen.normal(0, 0.05, 120), b, b + gen.normal(0, 0.05, 120)]
    )
    X[0, 1] = -X[0, 0]
    X[1, 3] = -X[1, 2]
    return SubspaceScorer(X, LOF(k=10))


class TestGreedyCoverage:
    def test_covers_both_outliers(self, two_outlier_scorer):
        summary = LookOut(budget=2).summarize(two_outlier_scorer, [0, 1], 2)
        assert sorted(map(tuple, summary.subspaces)) == [(0, 1), (2, 3)]

    def test_budget_one_picks_single_best(self, two_outlier_scorer):
        summary = LookOut(budget=1).summarize(two_outlier_scorer, [0, 1], 2)
        assert len(summary) == 1
        assert tuple(summary.subspaces[0]) in {(0, 1), (2, 3)}

    def test_first_pick_maximises_total_utility(self, two_outlier_scorer):
        # Greedy property: the first selected subspace has the largest
        # sum of clamped z-scores over the explained points.
        summary = LookOut(budget=3).summarize(two_outlier_scorer, [0, 1], 2)
        scorer = two_outlier_scorer
        from repro.subspaces import all_subspaces

        def utility(s):
            z = scorer.points_zscores(s, [0, 1])
            return float(np.maximum(z, 0).sum())

        best = max(all_subspaces(4, 2), key=utility)
        assert summary.subspaces[0] == best

    def test_marginal_gains_non_increasing(self, two_outlier_scorer):
        summary = LookOut(budget=4).summarize(two_outlier_scorer, [0, 1], 2)
        assert all(a >= b for a, b in zip(summary.scores, summary.scores[1:]))

    def test_stops_when_no_gain(self, two_outlier_scorer):
        # With a single outlier, one subspace maximises it; further picks
        # add nothing and the summary is truncated early.
        summary = LookOut(budget=6).summarize(two_outlier_scorer, [0], 2)
        assert len(summary) < 6


class TestLookOutInterface:
    def test_budget_capped_by_candidates(self, two_outlier_scorer):
        summary = LookOut(budget=100).summarize(two_outlier_scorer, [0, 1], 2)
        assert len(summary) <= 6  # C(4, 2)

    def test_max_candidates_guard(self, two_outlier_scorer):
        with pytest.raises(ValidationError, match="max_candidates"):
            LookOut(budget=2, max_candidates=3).summarize(
                two_outlier_scorer, [0], 2
            )

    def test_rejects_empty_points(self, two_outlier_scorer):
        with pytest.raises(ValidationError, match="points"):
            LookOut(budget=2).summarize(two_outlier_scorer, [], 2)

    def test_rejects_dimensionality_above_width(self, two_outlier_scorer):
        with pytest.raises(ValidationError):
            LookOut().summarize(two_outlier_scorer, [0], 9)

    def test_name(self):
        assert LookOut().name == "lookout"
