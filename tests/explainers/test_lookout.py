"""Unit tests for the LookOut summariser."""

import numpy as np
import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.explainers import LookOut
from repro.obs import metrics as obs_metrics
from repro.stats.batch import STATS_BATCH_ENV
from repro.subspaces import Subspace, SubspaceScorer


@pytest.fixture()
def two_outlier_scorer():
    """Two outliers, each breaking a different planted correlation."""
    gen = np.random.default_rng(8)
    a, b = gen.normal(size=120), gen.normal(size=120)
    X = np.column_stack(
        [a, a + gen.normal(0, 0.05, 120), b, b + gen.normal(0, 0.05, 120)]
    )
    X[0, 1] = -X[0, 0]
    X[1, 3] = -X[1, 2]
    return SubspaceScorer(X, LOF(k=10))


class TestGreedyCoverage:
    def test_covers_both_outliers(self, two_outlier_scorer):
        summary = LookOut(budget=2).summarize(two_outlier_scorer, [0, 1], 2)
        assert sorted(map(tuple, summary.subspaces)) == [(0, 1), (2, 3)]

    def test_budget_one_picks_single_best(self, two_outlier_scorer):
        summary = LookOut(budget=1).summarize(two_outlier_scorer, [0, 1], 2)
        assert len(summary) == 1
        assert tuple(summary.subspaces[0]) in {(0, 1), (2, 3)}

    def test_first_pick_maximises_total_utility(self, two_outlier_scorer):
        # Greedy property: the first selected subspace has the largest
        # sum of clamped z-scores over the explained points.
        summary = LookOut(budget=3).summarize(two_outlier_scorer, [0, 1], 2)
        scorer = two_outlier_scorer
        from repro.subspaces import all_subspaces

        def utility(s):
            z = scorer.points_zscores(s, [0, 1])
            return float(np.maximum(z, 0).sum())

        best = max(all_subspaces(4, 2), key=utility)
        assert summary.subspaces[0] == best

    def test_marginal_gains_non_increasing(self, two_outlier_scorer):
        summary = LookOut(budget=4).summarize(two_outlier_scorer, [0, 1], 2)
        assert all(a >= b for a, b in zip(summary.scores, summary.scores[1:]))

    def test_stops_when_no_gain(self, two_outlier_scorer):
        # With a single outlier, one subspace maximises it; further picks
        # add nothing and the summary is truncated early.
        summary = LookOut(budget=6).summarize(two_outlier_scorer, [0], 2)
        assert len(summary) < 6


class TestLazyGreedy:
    """Lazy (CELF) selection must replicate the dense reference exactly."""

    def candidates(self, n):
        return [Subspace([i, i + 1]) for i in range(n)]

    def assert_identical(self, explainer, utility):
        candidates = self.candidates(utility.shape[1])
        lazy = explainer._greedy_select_lazy(candidates, utility)
        dense = explainer._greedy_select_dense(candidates, utility)
        assert lazy.subspaces == dense.subspaces
        assert lazy.scores == dense.scores  # bit-identical gains

    def test_identical_on_random_utilities(self):
        gen = np.random.default_rng(13)
        for trial in range(50):
            n_points = int(gen.integers(1, 12))
            n_candidates = int(gen.integers(1, 20))
            utility = np.maximum(
                gen.normal(size=(n_points, n_candidates)), 0.0
            )
            budget = int(gen.integers(1, n_candidates + 3))
            self.assert_identical(LookOut(budget=budget), utility)

    def test_identical_with_ties_and_zero_columns(self):
        gen = np.random.default_rng(14)
        for trial in range(30):
            n_points = int(gen.integers(1, 8))
            n_candidates = int(gen.integers(2, 12))
            # Quantised utilities force exact gain ties; zeroed columns
            # force the early-termination branch.
            utility = np.round(
                np.maximum(gen.normal(size=(n_points, n_candidates)), 0.0), 1
            )
            utility[:, gen.random(n_candidates) < 0.3] = 0.0
            if gen.random() < 0.3:
                utility[:, 1] = utility[:, 0]  # exact duplicate column
            self.assert_identical(LookOut(budget=n_candidates), utility)

    def test_identical_on_all_zero_utility(self):
        self.assert_identical(LookOut(budget=3), np.zeros((5, 7)))

    def test_identical_on_the_fixture(self, two_outlier_scorer):
        monkey_budget = 4
        explainer = LookOut(budget=monkey_budget)
        from repro.subspaces import all_subspaces

        candidates = list(all_subspaces(4, 2))
        utility = np.maximum(
            two_outlier_scorer.points_zscores_many(candidates, [0, 1]).T, 0.0
        )
        self.assert_identical(explainer, utility)

    def test_kill_switch_routes_to_dense(self, monkeypatch, two_outlier_scorer):
        monkeypatch.setenv(STATS_BATCH_ENV, "1")
        lazy = LookOut(budget=3).summarize(two_outlier_scorer, [0, 1], 2)
        monkeypatch.setenv(STATS_BATCH_ENV, "0")
        dense = LookOut(budget=3).summarize(two_outlier_scorer, [0, 1], 2)
        assert lazy.subspaces == dense.subspaces
        assert lazy.scores == dense.scores

    def test_reevaluations_metric_counts_lazy_work(self, two_outlier_scorer):
        obs_metrics.reset()
        counter = obs_metrics.counter(
            "repro_lookout_lazy_reevaluations_total",
            "Marginal-gain recomputations performed by LookOut's lazy greedy",
        )
        LookOut(budget=4).summarize(two_outlier_scorer, [0, 1], 2)
        # 6 candidates, 4 rounds: the dense scan would recompute 6 gains
        # per round after the first; lazy must do strictly less.
        assert 0 < counter.value() < 18


class TestLookOutInterface:
    def test_budget_capped_by_candidates(self, two_outlier_scorer):
        summary = LookOut(budget=100).summarize(two_outlier_scorer, [0, 1], 2)
        assert len(summary) <= 6  # C(4, 2)

    def test_max_candidates_guard(self, two_outlier_scorer):
        with pytest.raises(ValidationError, match="max_candidates"):
            LookOut(budget=2, max_candidates=3).summarize(
                two_outlier_scorer, [0], 2
            )

    def test_rejects_empty_points(self, two_outlier_scorer):
        with pytest.raises(ValidationError, match="points"):
            LookOut(budget=2).summarize(two_outlier_scorer, [], 2)

    def test_rejects_dimensionality_above_width(self, two_outlier_scorer):
        with pytest.raises(ValidationError):
            LookOut().summarize(two_outlier_scorer, [0], 9)

    def test_name(self):
        assert LookOut().name == "lookout"
