"""Unit tests for the RefOut point explainer."""

import numpy as np
import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.explainers import RefOut
from repro.stats.batch import STATS_BATCH_ENV
from repro.subspaces import SubspaceScorer


@pytest.fixture()
def scorer(subspace_outlier_data):
    X, _, _ = subspace_outlier_data
    return SubspaceScorer(X, LOF(k=10))


class TestRefOutRecovery:
    def test_recovers_planted_2d_subspace(self, scorer, subspace_outlier_data):
        _, point, subspace = subspace_outlier_data
        result = RefOut(pool_size=60, beam_width=10, seed=0).explain(
            scorer, point, 2
        )
        assert result.subspaces[0] == subspace

    def test_recovers_planted_3d_subspace(self):
        gen = np.random.default_rng(9)
        X = gen.normal(size=(120, 6))
        X[0, [0, 2, 5]] = [6.0, -6.0, 6.0]
        scorer = SubspaceScorer(X, LOF(k=10))
        result = RefOut(pool_size=80, beam_width=20, seed=1).explain(scorer, 0, 3)
        assert result.subspaces[0] == (0, 2, 5)

    def test_returned_dimensionality_is_fixed(self, scorer):
        result = RefOut(pool_size=40, beam_width=10, seed=0).explain(scorer, 0, 2)
        assert all(s.dimensionality == 2 for s in result.subspaces)

    def test_scores_descending(self, scorer):
        result = RefOut(pool_size=40, beam_width=10, seed=0).explain(scorer, 0, 2)
        assert all(a >= b for a, b in zip(result.scores, result.scores[1:]))


class TestRefOutDeterminism:
    def test_same_seed_same_result(self, scorer, subspace_outlier_data):
        _, point, _ = subspace_outlier_data
        a = RefOut(pool_size=40, beam_width=10, seed=7).explain(scorer, point, 2)
        b = RefOut(pool_size=40, beam_width=10, seed=7).explain(scorer, point, 2)
        assert a.subspaces == b.subspaces
        assert a.scores == b.scores

    def test_per_point_pools_differ(self, scorer):
        # The pool is derived from (seed, point): two points must not share
        # identical explanations by pool coincidence.
        explainer = RefOut(pool_size=40, beam_width=10, seed=7)
        a = explainer.explain(scorer, 1, 2)
        b = explainer.explain(scorer, 2, 2)
        assert a.subspaces != b.subspaces or a.scores != b.scores


class TestBatchedScalarEquivalence:
    """Batched stage discrepancies vs the REPRO_STATS_BATCH=0 kill-switch."""

    def both_routes(self, monkeypatch, scorer, explainer, point, dim):
        monkeypatch.setenv(STATS_BATCH_ENV, "1")
        batched = explainer.explain(scorer, point, dim)
        monkeypatch.setenv(STATS_BATCH_ENV, "0")
        scalar = explainer.explain(scorer, point, dim)
        return batched, scalar

    @pytest.mark.parametrize("dim", [2, 3])
    def test_explanations_identical(
        self, monkeypatch, scorer, subspace_outlier_data, dim
    ):
        _, point, _ = subspace_outlier_data
        batched, scalar = self.both_routes(
            monkeypatch, scorer,
            RefOut(pool_size=40, beam_width=10, seed=0), point, dim,
        )
        assert batched.subspaces == scalar.subspaces
        assert batched.scores == scalar.scores

    def test_identical_with_degenerate_partitions(self, monkeypatch, scorer):
        # pool_dim_fraction 1.0 makes every partition one-sided, so the
        # degenerate (< MIN_PARTITION) rule fires for every candidate.
        batched, scalar = self.both_routes(
            monkeypatch, scorer,
            RefOut(pool_size=20, beam_width=5, pool_dim_fraction=1.0, seed=0),
            0, 2,
        )
        assert batched.subspaces == scalar.subspaces
        assert batched.scores == scalar.scores


class TestRefOutPoolGeometry:
    def test_pool_dim_clamped_to_target(self, rng):
        # pool_dim_fraction * d < target dimensionality: must still work by
        # clamping the projection dimensionality up to the target.
        X = rng.normal(size=(60, 5))
        X[0, [0, 1, 2]] = 6.0
        scorer = SubspaceScorer(X, LOF(k=10))
        result = RefOut(
            pool_size=30, beam_width=10, pool_dim_fraction=0.2, seed=0
        ).explain(scorer, 0, 3)
        assert all(s.dimensionality == 3 for s in result.subspaces)

    def test_full_fraction_pool_degenerates_gracefully(self, scorer):
        # fraction 1.0 -> every pool subspace is the full space; partitions
        # are one-sided so discrepancies are zero, but the refinement stage
        # still ranks candidates.
        result = RefOut(
            pool_size=20, beam_width=5, pool_dim_fraction=1.0, seed=0
        ).explain(scorer, 0, 2)
        assert len(result) > 0


class TestRefOutInterface:
    def test_rejects_dimensionality_above_width(self, scorer):
        with pytest.raises(ValidationError):
            RefOut(seed=0).explain(scorer, 0, 7)

    def test_rejects_zero_fraction(self):
        with pytest.raises(ValidationError):
            RefOut(pool_dim_fraction=0.0)

    def test_rejects_tiny_pool(self):
        with pytest.raises(ValidationError):
            RefOut(pool_size=2)

    def test_name(self):
        assert RefOut().name == "refout"
