"""Unit tests for the surrogate-tree predictive explainer."""

import numpy as np
import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.explainers import SurrogateExplainer
from repro.subspaces import SubspaceScorer


@pytest.fixture()
def full_space_scorer():
    """Outlier 0 deviating moderately in every feature (full-space)."""
    gen = np.random.default_rng(6)
    X = gen.normal(size=(150, 6))
    X[0] = 4.0
    return SubspaceScorer(X, LOF(k=10))


class TestRecovery:
    def test_recovers_planted_2d_subspace(self):
        gen = np.random.default_rng(2)
        X = gen.normal(size=(100, 6))
        X[0, [2, 4]] = [8.0, -8.0]
        scorer = SubspaceScorer(X, LOF(k=10))
        result = SurrogateExplainer().explain(scorer, 0, 2)
        assert result.subspaces[0] == (2, 4)

    def test_dimensionality_respected(self, full_space_scorer):
        result = SurrogateExplainer().explain(full_space_scorer, 0, 3)
        assert all(s.dimensionality == 3 for s in result.subspaces)

    def test_scores_descending(self, full_space_scorer):
        result = SurrogateExplainer().explain(full_space_scorer, 0, 2)
        assert all(a >= b for a, b in zip(result.scores, result.scores[1:]))

    def test_result_size(self, full_space_scorer):
        result = SurrogateExplainer(result_size=3).explain(full_space_scorer, 0, 2)
        assert len(result) <= 3


class TestSurrogateReuse:
    def test_tree_fitted_once_per_scorer(self, full_space_scorer):
        explainer = SurrogateExplainer()
        explainer.explain(full_space_scorer, 0, 2)
        tree_first = explainer._trees[id(full_space_scorer)]
        explainer.explain(full_space_scorer, 1, 2)
        assert explainer._trees[id(full_space_scorer)] is tree_first

    def test_distinct_scorers_get_distinct_trees(self, full_space_scorer):
        gen = np.random.default_rng(9)
        other = SubspaceScorer(gen.normal(size=(80, 6)), LOF(k=10))
        explainer = SurrogateExplainer()
        explainer.explain(full_space_scorer, 0, 2)
        explainer.explain(other, 0, 2)
        assert len(explainer._trees) == 2


class TestPipelineIntegration:
    def test_matches_exhaustive_ground_truth_on_full_space_data(self, breast_small):
        from repro.metrics import evaluate_point_explanations

        scorer = SubspaceScorer(breast_small.X, LOF(k=15))
        explainer = SurrogateExplainer()
        explanations = explainer.explain_points(scorer, breast_small.outliers, 2)
        result = evaluate_point_explanations(
            dict(explanations), breast_small.ground_truth, 2
        )
        # Predictive explanations should stay competitive with the
        # exhaustive searchers on full-space outliers.
        assert result.map >= 0.8

    def test_runs_in_pipeline(self, hics_small):
        from repro.pipeline import ExplanationPipeline

        pipeline = ExplanationPipeline(LOF(k=15), SurrogateExplainer())
        result = pipeline.run(hics_small, 2, points=hics_small.outliers[:3])
        assert pipeline.name == "surrogate+lof"
        assert 0.0 <= result.map <= 1.0


class TestValidation:
    def test_rejects_dim_above_width(self, full_space_scorer):
        with pytest.raises(ValidationError):
            SurrogateExplainer().explain(full_space_scorer, 0, 9)

    def test_rejects_bad_params(self):
        with pytest.raises(ValidationError):
            SurrogateExplainer(max_depth=0)
        with pytest.raises(ValidationError):
            SurrogateExplainer(n_candidate_features=1)
