"""Deterministic fault-injection seam."""

import pytest

from repro.exceptions import FaultInjectionError, ValidationError
from repro.ft import FaultInjector


class TestSelection:
    def test_rate_one_selects_everything(self):
        injector = FaultInjector(rate=1.0)
        assert injector.selected("a") and injector.selected("b")

    def test_rate_zero_selects_nothing(self):
        injector = FaultInjector(rate=0.0)
        assert not injector.selected("a")
        injector.check("a")  # never raises

    def test_selection_is_deterministic_per_seed(self):
        keys = [f"cell-{i}" for i in range(200)]
        a = [FaultInjector(rate=0.5, seed=7).selected(k) for k in keys]
        b = [FaultInjector(rate=0.5, seed=7).selected(k) for k in keys]
        assert a == b
        c = [FaultInjector(rate=0.5, seed=8).selected(k) for k in keys]
        assert a != c  # a different seed picks a different subset

    def test_rate_roughly_respected(self):
        keys = [f"cell-{i}" for i in range(1000)]
        injector = FaultInjector(rate=0.3, seed=0)
        hit = sum(injector.selected(k) for k in keys)
        assert 200 < hit < 400

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValidationError):
            FaultInjector(rate=1.5)
        with pytest.raises(ValidationError):
            FaultInjector(rate=0.5, max_faults=0)


class TestAttemptCounting:
    def test_faults_then_recovers(self):
        injector = FaultInjector(rate=1.0, max_faults=2)
        for _ in range(2):
            with pytest.raises(FaultInjectionError):
                injector.check("k")
        injector.check("k")  # third attempt succeeds

    def test_counters_are_per_key(self):
        injector = FaultInjector(rate=1.0, max_faults=1)
        with pytest.raises(FaultInjectionError):
            injector.check("a")
        with pytest.raises(FaultInjectionError):
            injector.check("b")
        injector.check("a")
        injector.check("b")


class TestFromEnv:
    def test_absent_means_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_RATE", raising=False)
        assert FaultInjector.from_env() is None

    def test_zero_rate_means_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.0")
        assert FaultInjector.from_env() is None

    def test_env_configures_all_knobs(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.25")
        monkeypatch.setenv("REPRO_FAULT_SEED", "9")
        monkeypatch.setenv("REPRO_FAULT_MAX", "3")
        injector = FaultInjector.from_env()
        assert injector.rate == 0.25
        assert injector.seed == 9
        assert injector.max_faults == 3

    def test_garbage_rate_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "lots")
        with pytest.raises(ValidationError):
            FaultInjector.from_env()
