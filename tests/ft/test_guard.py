"""Retry, timeout, classification, and config resolution."""

import time

import pytest

from repro.exceptions import (
    CellTimeoutError,
    FaultInjectionError,
    TransientError,
    ValidationError,
)
from repro.ft import (
    FaultInjector,
    FTConfig,
    call_with_timeout,
    classify_error,
    execute_cell,
    resolve_ft,
)


class TestClassification:
    @pytest.mark.parametrize(
        "exc",
        [
            TransientError("flaky"),
            FaultInjectionError("injected"),
            CellTimeoutError("too slow"),
            OSError("disk"),
            ConnectionError("peer"),
        ],
    )
    def test_transient(self, exc):
        assert classify_error(exc) == "transient"

    @pytest.mark.parametrize(
        "exc",
        [ValueError("bad"), RuntimeError("bug"), ValidationError("nope"), KeyError("k")],
    )
    def test_fatal(self, exc):
        assert classify_error(exc) == "fatal"


class TestTimeout:
    def test_none_is_plain_call(self):
        assert call_with_timeout(lambda: 5, None) == 5

    def test_fast_call_within_deadline(self):
        assert call_with_timeout(lambda: 5, timeout=10.0) == 5

    def test_exception_propagates_through_worker_thread(self):
        with pytest.raises(ValueError, match="inner"):
            call_with_timeout(lambda: (_ for _ in ()).throw(ValueError("inner")), 10.0)

    def test_overrun_raises_cell_timeout(self):
        with pytest.raises(CellTimeoutError, match="deadline"):
            call_with_timeout(lambda: time.sleep(5), timeout=0.05, label="slow-cell")


class TestFTConfig:
    def test_defaults_are_inert(self):
        ft = FTConfig()
        assert ft.checkpoint is None
        assert ft.max_retries == 0
        assert ft.cell_timeout is None
        assert ft.injector is None

    def test_validation(self):
        with pytest.raises(ValidationError):
            FTConfig(max_retries=-1)
        with pytest.raises(ValidationError):
            FTConfig(cell_timeout=0.0)
        with pytest.raises(ValidationError):
            FTConfig(backoff_base=-1.0)

    def test_from_env_reads_every_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT", "/tmp/j.jsonl")
        monkeypatch.setenv("REPRO_RESUME", "0")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "4")
        monkeypatch.setenv("REPRO_CELL_TIMEOUT", "2.5")
        monkeypatch.setenv("REPRO_BACKOFF", "0.01")
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        ft = FTConfig.from_env()
        assert ft.checkpoint == "/tmp/j.jsonl"
        assert ft.resume is False
        assert ft.max_retries == 4
        assert ft.cell_timeout == 2.5
        assert ft.backoff_base == 0.01
        assert isinstance(ft.injector, FaultInjector)

    def test_resolve_prefers_explicit_config(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_RETRIES", "9")
        assert resolve_ft(FTConfig(max_retries=1)).max_retries == 1
        assert resolve_ft(None).max_retries == 9


class TestExecuteCell:
    def test_success_passes_through(self):
        status, value = execute_cell(
            lambda: 42, key="k", ft=FTConfig(), skip_errors=False
        )
        assert (status, value) == ("result", 42)

    def test_transient_retries_with_backoff_then_succeeds(self):
        calls, delays = [], []
        def body():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("flaky")
            return "done"
        status, value = execute_cell(
            body,
            key="k",
            ft=FTConfig(max_retries=2, backoff_base=0.1, backoff_factor=2.0),
            skip_errors=False,
            sleep=delays.append,
        )
        assert (status, value) == ("result", "done")
        assert len(calls) == 3
        assert delays == [0.1, 0.2]  # exponential backoff sequence

    def test_transient_exhaustion_degrades_not_raises(self):
        def body():
            raise TransientError("always")
        status, message = execute_cell(
            body,
            key="k",
            ft=FTConfig(max_retries=2, backoff_base=0.0),
            skip_errors=False,  # degradation must not depend on skip_errors
        )
        assert status == "failed"
        assert "always" in message and "3 attempt(s)" in message

    def test_fatal_never_retried(self):
        calls = []
        def body():
            calls.append(1)
            raise ValueError("deterministic bug")
        with pytest.raises(ValueError):
            execute_cell(
                body, key="k", ft=FTConfig(max_retries=5), skip_errors=False
            )
        assert len(calls) == 1

    def test_fatal_with_skip_errors_reports_error(self):
        def body():
            raise ValueError("bug")
        status, message = execute_cell(
            body, key="k", ft=FTConfig(), skip_errors=True
        )
        assert status == "error"
        assert "ValueError" in message

    def test_injector_fault_recovered_by_retry(self):
        ft = FTConfig(
            max_retries=1,
            backoff_base=0.0,
            injector=FaultInjector(rate=1.0, max_faults=1),
        )
        status, value = execute_cell(
            lambda: "ran", key="cell", ft=ft, skip_errors=False
        )
        assert (status, value) == ("result", "ran")

    def test_timeout_is_retryable(self):
        calls = []
        def body():
            calls.append(1)
            if len(calls) == 1:
                time.sleep(5)
            return "recovered"
        status, value = execute_cell(
            body,
            key="k",
            ft=FTConfig(max_retries=1, backoff_base=0.0, cell_timeout=0.05),
            skip_errors=False,
        )
        assert (status, value) == ("result", "recovered")
        assert len(calls) == 2
