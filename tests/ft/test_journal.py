"""Checkpoint journal: keys, round-trips, crash tolerance."""

import json

import pytest

from repro.exceptions import ValidationError
from repro.ft import (
    CheckpointJournal,
    cell_key,
    result_from_record,
    result_to_record,
)
from repro.metrics.evaluation import EvaluationResult
from repro.pipeline.pipeline import PipelineResult


def make_result(dim=2, map_=0.75):
    return PipelineResult(
        dataset="hics_14",
        detector="lof",
        explainer="beam",
        dimensionality=dim,
        evaluation=EvaluationResult(
            map=map_,
            mean_recall=0.5,
            per_point_ap={3: map_, 7: map_},
            per_point_recall={3: 0.5, 7: 0.5},
            dimensionality=dim,
        ),
        seconds=1.25,
        n_subspaces_scored=91,
        cost_breakdown={"explain": 1.2, "detector": 0.9, "evaluate": 0.05},
    )


class TestCellKey:
    def test_distinct_components_distinct_keys(self):
        base = cell_key(("d", 1), "lof", "beam", 2, (0, 1))
        assert cell_key(("d", 2), "lof", "beam", 2, (0, 1)) != base  # content hash
        assert cell_key(("d", 1), "knn", "beam", 2, (0, 1)) != base
        assert cell_key(("d", 1), "lof", "refout", 2, (0, 1)) != base
        assert cell_key(("d", 1), "lof", "beam", 3, (0, 1)) != base
        assert cell_key(("d", 1), "lof", "beam", 2, (0, 2)) != base
        assert cell_key(("d", 1), "lof", "beam", 2, None) != base

    def test_key_is_stable(self):
        assert cell_key(("d", 1), "lof", "beam", 2, (0, 1)) == cell_key(
            ("d", 1), "lof", "beam", 2, (0, 1)
        )


class TestRecordRoundTrip:
    def test_row_level_fields_survive(self):
        original = make_result()
        rebuilt = result_from_record(
            json.loads(json.dumps(result_to_record(original)))
        )
        assert rebuilt.as_row() == original.as_row()
        assert rebuilt.evaluation == original.evaluation
        assert rebuilt.cost_breakdown == original.cost_breakdown

    def test_rankings_deliberately_dropped(self):
        rebuilt = result_from_record(result_to_record(make_result()))
        assert rebuilt.explanations is None
        assert rebuilt.summary is None


class TestJournal:
    def test_record_and_replay(self, tmp_path):
        path = str(tmp_path / "grid.journal")
        journal = CheckpointJournal(path)
        result = make_result()
        journal.record_result("k1", result)
        reopened = CheckpointJournal(path)
        assert "k1" in reopened
        assert reopened.replay("k1").as_row() == result.as_row()

    def test_failure_records_are_not_completions(self, tmp_path):
        path = str(tmp_path / "grid.journal")
        journal = CheckpointJournal(path)
        journal.record_failure("k1", {"error": "boom"})
        reopened = CheckpointJournal(path)
        assert "k1" not in reopened
        assert reopened.failed_keys() == ["k1"]

    def test_later_success_clears_failure(self, tmp_path):
        path = str(tmp_path / "grid.journal")
        journal = CheckpointJournal(path)
        journal.record_failure("k1", {"error": "boom"})
        journal.record_result("k1", make_result())
        reopened = CheckpointJournal(path)
        assert "k1" in reopened
        assert reopened.failed_keys() == []

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = str(tmp_path / "grid.journal")
        journal = CheckpointJournal(path)
        journal.record_result("k1", make_result())
        journal.record_result("k2", make_result(dim=3))
        with open(path, "a") as handle:
            handle.write('{"v": 1, "kind": "result", "key": "k3", "rec')
        reopened = CheckpointJournal(path)
        assert sorted(reopened.completed_keys()) == ["k1", "k2"]

    def test_fresh_run_refuses_existing_journal(self, tmp_path):
        path = str(tmp_path / "grid.journal")
        CheckpointJournal(path).record_result("k1", make_result())
        with pytest.raises(ValidationError, match="resume"):
            CheckpointJournal(path, resume=False)

    def test_resume_false_on_missing_file_is_fine(self, tmp_path):
        journal = CheckpointJournal(str(tmp_path / "new.journal"), resume=False)
        assert len(journal) == 0
