"""Recovery semantics end-to-end: kill, resume, byte-identical tables.

The acceptance contract of ``repro.ft``: interrupting a grid run (here
simulated with deterministic fault injection) and re-running with the
same checkpoint journal produces a final table identical to an
uninterrupted run — under the serial runner and under thread/process
grid fan-out — while cells that exhaust their retries land in the
``failed_cells`` audit without aborting anything.

Identity is asserted on the deterministic row projection (dataset,
detector, explainer, dimensionality, MAP, recall, point count) serialised
to CSV bytes. Wall-clock columns (``seconds``) are genuinely different
between any two runs, and ``n_subspaces_scored`` depends on scorer-cache
state that journal replay legitimately skips; neither is part of the
recovery contract.
"""

import io
import csv
import json

import pytest

from repro.detectors import LOF, KNNDetector
from repro.explainers import Beam, LookOut
from repro.ft import CheckpointJournal, FaultInjector, FTConfig
from repro.obs import metrics as obs_metrics
from repro.pipeline import GridRunner, run_grid_parallel

FACTORIES = [lambda: Beam(beam_width=8, result_size=8), lambda: LookOut(budget=8)]
ALWAYS = 10**9  # max_faults far above any retry budget: permanent failure


def detectors():
    return [LOF(k=15), KNNDetector(k=10)]


def selector(dataset, dimensionality):
    return dataset.ground_truth.points_at(dimensionality)[:2]


def canonical_bytes(table):
    """The deterministic projection of a result table, as CSV bytes."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    for r in table:
        writer.writerow(
            [
                r.dataset,
                r.detector,
                r.explainer,
                r.dimensionality,
                repr(r.map),
                repr(r.mean_recall),
                r.evaluation.n_points,
            ]
        )
    return buffer.getvalue().encode()


def journal_hits():
    return obs_metrics.counter("repro_ft_journal_hits_total", "").value()


def cells_run():
    return obs_metrics.counter("repro_grid_cells_total", "").value()


class TestSerialResume:
    def test_interrupted_then_resumed_matches_uninterrupted(
        self, hics_small, tmp_path
    ):
        reference = GridRunner(
            detectors(), FACTORIES, skip_errors=True, points_selector=selector
        ).run([hics_small], [2, 3])
        assert len(reference) == 8

        # "Kill" the run: half the cells fail permanently, the rest are
        # journaled. The grid survives (graceful degradation).
        path = str(tmp_path / "grid.journal")
        interrupted = GridRunner(
            detectors(),
            FACTORIES,
            skip_errors=True,
            points_selector=selector,
            ft=FTConfig(
                checkpoint=path,
                injector=FaultInjector(rate=0.5, seed=3, max_faults=ALWAYS),
            ),
        )
        partial = interrupted.run([hics_small], [2, 3])
        assert 0 < len(partial) < 8
        assert len(partial) + len(interrupted.failed_cells) == 8
        assert interrupted.skipped == []

        # Resume without faults: journaled cells replayed, failed ones
        # recomputed, final table byte-identical to the uninterrupted run.
        hits_before, run_before = journal_hits(), cells_run()
        resumed_runner = GridRunner(
            detectors(),
            FACTORIES,
            skip_errors=True,
            points_selector=selector,
            ft=FTConfig(checkpoint=path),
        )
        resumed = resumed_runner.run([hics_small], [2, 3])
        assert canonical_bytes(resumed) == canonical_bytes(reference)
        assert resumed_runner.failed_cells == []
        # Only the previously-failed cells actually executed.
        assert journal_hits() - hits_before == len(partial)
        assert cells_run() - run_before == 8 - len(partial)

    def test_run_checkpoint_kwarg_overrides_config(self, hics_small, tmp_path):
        path = str(tmp_path / "kwarg.journal")
        runner = GridRunner(
            [LOF(k=15)],
            [lambda: Beam(beam_width=5)],
            points_selector=selector,
        )
        runner.run([hics_small], [2], checkpoint=path)
        assert len(CheckpointJournal(path)) == 1

    def test_failed_cells_journaled_for_triage(self, hics_small, tmp_path):
        path = str(tmp_path / "failures.journal")
        runner = GridRunner(
            [LOF(k=15)],
            [lambda: Beam(beam_width=5)],
            points_selector=selector,
            ft=FTConfig(
                checkpoint=path,
                injector=FaultInjector(rate=1.0, max_faults=ALWAYS),
            ),
        )
        table = runner.run([hics_small], [2])
        assert len(table) == 0
        assert len(runner.failed_cells) == 1
        assert "FaultInjectionError" in runner.failed_cells[0][-1]
        assert len(CheckpointJournal(path).failed_keys()) == 1

    def test_retry_recovers_single_fault_cells(self, hics_small):
        runner = GridRunner(
            detectors(),
            FACTORIES,
            skip_errors=True,
            points_selector=selector,
            ft=FTConfig(
                max_retries=1,
                backoff_base=0.0,
                injector=FaultInjector(rate=1.0, max_faults=1),
            ),
        )
        table = runner.run([hics_small], [2])
        assert len(table) == 4
        assert runner.failed_cells == []


class TestParallelResume:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_interrupted_then_resumed_matches_uninterrupted(
        self, hics_small, tmp_path, backend
    ):
        n_jobs = 1 if backend == "serial" else 2
        reference, _, _, _ = run_grid_parallel(
            [hics_small],
            detectors(),
            FACTORIES,
            [2, 3],
            n_jobs=n_jobs,
            backend=backend,
            points_selector=selector,
        )
        assert len(reference) == 8

        path = str(tmp_path / f"{backend}.journal")
        partial, skipped, _, failed = run_grid_parallel(
            [hics_small],
            detectors(),
            FACTORIES,
            [2, 3],
            n_jobs=n_jobs,
            backend=backend,
            points_selector=selector,
            ft=FTConfig(
                checkpoint=path,
                injector=FaultInjector(rate=0.5, seed=3, max_faults=ALWAYS),
            ),
        )
        assert 0 < len(partial) < 8
        assert len(partial) + len(failed) == 8
        assert skipped == []

        resumed, skipped2, _, failed2 = run_grid_parallel(
            [hics_small],
            detectors(),
            FACTORIES,
            [2, 3],
            n_jobs=n_jobs,
            backend=backend,
            points_selector=selector,
            ft=FTConfig(checkpoint=path),
        )
        assert canonical_bytes(resumed) == canonical_bytes(reference)
        assert failed2 == [] and skipped2 == []

    def test_retry_recovers_under_thread_fanout(self, hics_small):
        table, skipped, _, failed = run_grid_parallel(
            [hics_small],
            detectors(),
            FACTORIES,
            [2],
            n_jobs=2,
            backend="thread",
            points_selector=selector,
            ft=FTConfig(
                max_retries=1,
                backoff_base=0.0,
                injector=FaultInjector(rate=1.0, max_faults=1),
            ),
        )
        assert len(table) == 4
        assert failed == [] and skipped == []

    def test_journal_flushed_per_group_not_at_exit(self, hics_small, tmp_path):
        """Every completed group must hit the journal before the run ends."""
        path = str(tmp_path / "incremental.journal")
        run_grid_parallel(
            [hics_small],
            [LOF(k=15)],
            [lambda: Beam(beam_width=5)],
            [2],
            n_jobs=1,
            points_selector=selector,
            ft=FTConfig(checkpoint=path),
        )
        with open(path) as handle:
            entries = [json.loads(line) for line in handle if line.strip()]
        kinds = [entry["kind"] for entry in entries]
        # One manifest header, then one row for the completed cell.
        assert kinds == ["manifest", "result"]


class TestEnvironmentWiring:
    def test_grid_runner_resolves_ft_from_env(
        self, hics_small, tmp_path, monkeypatch
    ):
        """The CLI flags travel via REPRO_* variables to plain GridRunner."""
        path = str(tmp_path / "env.journal")
        monkeypatch.setenv("REPRO_CHECKPOINT", path)
        monkeypatch.setenv("REPRO_MAX_RETRIES", "1")
        monkeypatch.setenv("REPRO_BACKOFF", "0.0")
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        runner = GridRunner(
            [LOF(k=15)], [lambda: Beam(beam_width=5)], points_selector=selector
        )
        table = runner.run([hics_small], [2])
        assert len(table) == 1  # fault injected once, retry recovered
        assert len(CheckpointJournal(path)) == 1
