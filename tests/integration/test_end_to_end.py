"""Integration tests: full detector → explainer → evaluation pipelines.

These exercise the same paths as the paper's experiments, at small scale,
and assert the *qualitative* results the paper reports for the easy cells
(where even scaled-down runs are unambiguous).
"""

import pytest

from repro.detectors import LOF, FastABOD
from repro.explainers import Beam, HiCS, LookOut, RefOut
from repro.pipeline import ExplanationPipeline, GridRunner


class TestSyntheticHeadlines:
    """Paper Figure 9/10, panel (a): the 14d synthetic dataset."""

    def test_beam_lof_2d_optimal(self, hics_small):
        result = ExplanationPipeline(LOF(k=15), Beam(beam_width=50)).run(
            hics_small, 2
        )
        assert result.map == 1.0

    def test_lookout_lof_2d_optimal(self, hics_small):
        result = ExplanationPipeline(LOF(k=15), LookOut(budget=50)).run(
            hics_small, 2
        )
        assert result.map == 1.0

    def test_hics_lof_2d_optimal(self, hics_small):
        result = ExplanationPipeline(
            LOF(k=15), HiCS(mc_iterations=40, candidate_cutoff=50, seed=0)
        ).run(hics_small, 2)
        assert result.map == 1.0

    def test_refout_lof_2d_high(self, hics_small):
        result = ExplanationPipeline(
            LOF(k=15), RefOut(pool_size=60, beam_width=30, seed=0)
        ).run(hics_small, 2)
        assert result.map >= 0.6

    def test_hics_3d(self, hics_small):
        result = ExplanationPipeline(
            LOF(k=15), HiCS(mc_iterations=40, candidate_cutoff=12, seed=0)
        ).run(hics_small, 3)
        assert result.map >= 0.8

    def test_lookout_decays_with_dimensionality(self, hics_small):
        # Paper Figure 10: LookOut's MAP drops as explanation
        # dimensionality grows (augmented subspaces of lower-dimensional
        # outliers win its marginal gain), while HiCS stays high.
        lookout = lambda: LookOut(budget=50)
        low = ExplanationPipeline(LOF(k=15), lookout()).run(hics_small, 2)
        high = ExplanationPipeline(LOF(k=15), lookout()).run(hics_small, 5)
        assert low.map == 1.0
        assert high.map < low.map


class TestRealHeadlines:
    """Paper Figure 9/10, panels (f-h): full-space outliers."""

    def test_beam_lof_matches_exhaustive_ground_truth(self, breast_small):
        # Ground truth came from exhaustive LOF z-score search, and Beam's
        # first stage *is* that exhaustive search at 2d: MAP must be 1.
        result = ExplanationPipeline(LOF(k=15), Beam(beam_width=50)).run(
            breast_small, 2
        )
        assert result.map == 1.0

    def test_hics_poor_on_full_space_outliers(self, breast_small):
        # No planted feature dependence: the correlation heuristic has
        # nothing to exploit (paper Section 4.2). The cutoff must prune
        # (stay below C(8, 2) = 28) for the heuristic to matter at all.
        # "Poor" is relative to the point explainers' MAP of 1.0 on this
        # dataset; the exact value at smoke scale depends on the
        # Monte-Carlo stream (per-candidate seed derivation), so assert
        # the half-way headline margin inclusively.
        result = ExplanationPipeline(
            LOF(k=15), HiCS(mc_iterations=40, candidate_cutoff=12, seed=0)
        ).run(breast_small, 2)
        assert result.map <= 0.5

    def test_lookout_lof_strong(self, breast_small):
        result = ExplanationPipeline(LOF(k=15), LookOut(budget=30)).run(
            breast_small, 2
        )
        assert result.map >= 0.5


class TestCrossFamilyGrid:
    def test_twelve_pipelines_run(self, hics_small):
        # The paper's full 12-pipeline grid (3 detectors x 4 explainers),
        # scaled down: everything must execute and produce valid MAP.
        from repro.detectors import IsolationForest

        detectors = [
            LOF(k=15),
            FastABOD(k=10),
            IsolationForest(n_trees=15, n_repeats=1, seed=0),
        ]
        factories = [
            lambda: Beam(beam_width=10),
            lambda: RefOut(pool_size=30, beam_width=10, seed=0),
            lambda: LookOut(budget=10),
            lambda: HiCS(mc_iterations=15, candidate_cutoff=20, seed=0),
        ]
        runner = GridRunner(
            detectors,
            factories,
            points_selector=lambda ds, dim: ds.ground_truth.points_at(dim)[:3],
        )
        table = runner.run([hics_small], [2])
        assert len(table) == 12
        assert all(0.0 <= r.map <= 1.0 for r in table)

    def test_detector_changes_results(self, hics_small):
        # Same explainer, different detectors: the pipelines genuinely
        # differ (research question 1).
        points = hics_small.ground_truth.points_at(2)
        beam = lambda: Beam(beam_width=20)
        lof_result = ExplanationPipeline(LOF(k=15), beam()).run(
            hics_small, 2, points=points
        )
        abod_result = ExplanationPipeline(FastABOD(k=10), beam()).run(
            hics_small, 2, points=points
        )
        lof_top = [lof_result.explanations[p].subspaces[0] for p in points]
        abod_top = [abod_result.explanations[p].subspaces[0] for p in points]
        assert lof_result.map == 1.0  # and typically abod differs somewhere
        assert len(lof_top) == len(abod_top)
