"""Unit tests for the detector-quality metrics (sklearn-free oracles)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics import (
    detection_average_precision,
    precision_at_n,
    roc_auc,
)


class TestRocAuc:
    def test_perfect_separation(self):
        scores = np.array([0.1, 0.2, 0.9, 1.0])
        assert roc_auc(scores, [2, 3]) == 1.0

    def test_inverted_separation(self):
        scores = np.array([0.9, 1.0, 0.1, 0.2])
        assert roc_auc(scores, [2, 3]) == 0.0

    def test_random_is_half(self, rng):
        scores = rng.normal(size=2000)
        outliers = rng.choice(2000, size=200, replace=False)
        assert roc_auc(scores, outliers) == pytest.approx(0.5, abs=0.06)

    def test_ties_count_half(self):
        scores = np.array([1.0, 1.0, 1.0, 1.0])
        assert roc_auc(scores, [0, 1]) == pytest.approx(0.5)

    def test_matches_pairwise_definition(self, rng):
        scores = rng.normal(size=40)
        outliers = [1, 5, 9]
        inliers = [i for i in range(40) if i not in outliers]
        wins = sum(
            1.0 if scores[o] > scores[i] else 0.5 if scores[o] == scores[i] else 0.0
            for o in outliers
            for i in inliers
        )
        assert roc_auc(scores, outliers) == pytest.approx(
            wins / (len(outliers) * len(inliers))
        )

    def test_rejects_all_outliers(self):
        with pytest.raises(ValidationError):
            roc_auc(np.array([1.0, 2.0]), [0, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            roc_auc(np.array([1.0, 2.0]), [5])


class TestDetectionAveragePrecision:
    def test_perfect_ranking(self):
        scores = np.array([0.1, 0.9, 0.2, 1.0])
        assert detection_average_precision(scores, [1, 3]) == 1.0

    def test_single_outlier_at_rank_two(self):
        scores = np.array([0.5, 1.0, 0.1])
        # outlier 0 sits at rank 2 -> AP = 1/2.
        assert detection_average_precision(scores, [0]) == 0.5

    def test_worked_example(self):
        scores = np.array([4.0, 3.0, 2.0, 1.0])
        # outliers at ranks 1 and 3: AP = (1/1 + 2/3) / 2.
        assert detection_average_precision(scores, [0, 2]) == pytest.approx(
            (1.0 + 2.0 / 3.0) / 2.0
        )

    def test_bounds(self, rng):
        scores = rng.normal(size=50)
        ap = detection_average_precision(scores, [0, 1, 2])
        assert 0.0 < ap <= 1.0


class TestPrecisionAtN:
    def test_r_precision_default(self):
        scores = np.array([0.9, 0.8, 0.1, 0.2])
        assert precision_at_n(scores, [0, 1]) == 1.0
        assert precision_at_n(scores, [0, 2]) == 0.5

    def test_explicit_n(self):
        scores = np.array([0.9, 0.8, 0.7, 0.1])
        assert precision_at_n(scores, [0], n=3) == pytest.approx(1 / 3)

    def test_n_capped_at_length(self):
        scores = np.array([0.9, 0.1])
        assert precision_at_n(scores, [0], n=10) == 0.5


class TestOnPlantedData:
    def test_lof_on_planted_blob(self, blob_with_outlier):
        from repro.detectors import LOF

        X, outlier = blob_with_outlier
        scores = LOF(k=10).score(X)
        assert roc_auc(scores, [outlier]) == 1.0
        assert detection_average_precision(scores, [outlier]) == 1.0
        assert precision_at_n(scores, [outlier]) == 1.0
