"""Unit tests for repro.metrics.evaluation."""

import pytest

from repro.datasets import GroundTruth
from repro.exceptions import ValidationError
from repro.explainers import RankedSubspaces
from repro.metrics import (
    evaluate_point_explanations,
    evaluate_summary,
    mean_average_precision,
    mean_recall,
)
from repro.subspaces import Subspace


def ranking(*subs):
    return RankedSubspaces(
        subspaces=tuple(Subspace(s) for s in subs),
        scores=tuple(float(len(subs) - i) for i in range(len(subs))),
    )


@pytest.fixture()
def ground_truth():
    return GroundTruth(
        {
            0: [(0, 1)],
            1: [(2, 3)],
            2: [(0, 1, 2)],  # explained at 3d only
        }
    )


class TestEvaluatePointExplanations:
    def test_perfect(self, ground_truth):
        explanations = {0: ranking((0, 1)), 1: ranking((2, 3))}
        result = evaluate_point_explanations(explanations, ground_truth, 2)
        assert result.map == 1.0
        assert result.mean_recall == 1.0
        assert result.n_points == 2

    def test_missing_point_counts_as_zero(self, ground_truth):
        explanations = {0: ranking((0, 1))}
        result = evaluate_point_explanations(explanations, ground_truth, 2)
        assert result.map == pytest.approx(0.5)
        assert result.per_point_ap[1] == 0.0

    def test_dimensionality_filter(self, ground_truth):
        explanations = {2: ranking((0, 1, 2))}
        result = evaluate_point_explanations(explanations, ground_truth, 3)
        assert result.n_points == 1
        assert result.map == 1.0

    def test_points_restriction(self, ground_truth):
        explanations = {0: ranking((0, 1))}
        result = evaluate_point_explanations(
            explanations, ground_truth, 2, points=(0,)
        )
        assert result.n_points == 1
        assert result.map == 1.0

    def test_no_points_at_dimensionality(self, ground_truth):
        with pytest.raises(ValidationError, match="no ground-truth point"):
            evaluate_point_explanations({}, ground_truth, 5)

    def test_rank_matters(self, ground_truth):
        buried = {0: ranking((8, 9), (0, 1)), 1: ranking((2, 3))}
        result = evaluate_point_explanations(buried, ground_truth, 2)
        assert result.map == pytest.approx((0.5 + 1.0) / 2)
        assert result.mean_recall == 1.0  # recall is order-blind


class TestEvaluateSummary:
    def test_shared_ranking(self, ground_truth):
        summary = ranking((0, 1), (2, 3))
        result = evaluate_summary(summary, ground_truth, 2)
        # point 0: rel at rank 1 -> AP 1; point 1: rel at rank 2 -> AP 0.5
        assert result.map == pytest.approx((1.0 + 0.5) / 2)

    def test_summary_not_covering_everyone(self, ground_truth):
        summary = ranking((0, 1))
        result = evaluate_summary(summary, ground_truth, 2)
        assert result.per_point_ap[1] == 0.0

    def test_points_restriction(self, ground_truth):
        summary = ranking((0, 1))
        result = evaluate_summary(summary, ground_truth, 2, points=(0,))
        assert result.map == 1.0


class TestConvenienceWrappers:
    def test_map_wrapper(self, ground_truth):
        explanations = {0: ranking((0, 1)), 1: ranking((2, 3))}
        assert mean_average_precision(explanations, ground_truth, 2) == 1.0

    def test_recall_wrapper(self, ground_truth):
        explanations = {0: ranking((0, 1)), 1: ranking((8, 9))}
        assert mean_recall(explanations, ground_truth, 2) == pytest.approx(0.5)
