"""Unit tests for the dimension-adjusted quality measure."""

import numpy as np
import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.metrics import dimension_adjusted_quality
from repro.subspaces import SubspaceScorer


@pytest.fixture(scope="module")
def scorer(subspace_outlier_data):
    X, _, _ = subspace_outlier_data
    return SubspaceScorer(X, LOF(k=10))


class TestQuality:
    def test_relevant_subspace_above_reference_mean(
        self, scorer, subspace_outlier_data
    ):
        # Many same-dimensional references overlap the planted features
        # and also see the deviation, so the calibrated value is modest —
        # but it must sit above the reference mean.
        _, point, subspace = subspace_outlier_data
        quality = dimension_adjusted_quality(scorer, subspace, point, seed=0)
        assert quality > 0.5

    def test_irrelevant_subspace_below_reference_mean(
        self, scorer, subspace_outlier_data
    ):
        _, point, _ = subspace_outlier_data
        quality = dimension_adjusted_quality(scorer, (0, 1), point, seed=0)
        assert quality < 0.0

    def test_relevant_beats_irrelevant(self, scorer, subspace_outlier_data):
        _, point, subspace = subspace_outlier_data
        good = dimension_adjusted_quality(scorer, subspace, point, seed=0)
        bad = dimension_adjusted_quality(scorer, (0, 3), point, seed=0)
        assert good > bad

    def test_deterministic_per_seed(self, scorer, subspace_outlier_data):
        _, point, subspace = subspace_outlier_data
        a = dimension_adjusted_quality(scorer, subspace, point, seed=4)
        b = dimension_adjusted_quality(scorer, subspace, point, seed=4)
        assert a == b

    def test_small_population_enumerates(self, scorer, subspace_outlier_data):
        # 1d subspaces of a 6d dataset: population 6 <= n_reference, so the
        # reference set is the full enumeration minus the candidate.
        _, point, _ = subspace_outlier_data
        quality = dimension_adjusted_quality(
            scorer, (2,), point, n_reference=30, seed=0
        )
        assert np.isfinite(quality)

    def test_comparable_across_dimensionalities(self, scorer, subspace_outlier_data):
        # The calibrated score of the planted 2d subspace should dominate
        # the calibrated score of an arbitrary 3d subspace, even though raw
        # z-scores of different dimensionalities are incomparable.
        _, point, subspace = subspace_outlier_data
        planted = dimension_adjusted_quality(scorer, subspace, point, seed=0)
        arbitrary = dimension_adjusted_quality(scorer, (0, 1, 3), point, seed=0)
        assert planted > arbitrary

    def test_rejects_full_space(self, scorer, subspace_outlier_data):
        _, point, _ = subspace_outlier_data
        with pytest.raises(ValidationError):
            dimension_adjusted_quality(
                scorer, tuple(range(scorer.n_features)), point
            )

    def test_rejects_tiny_reference(self, scorer, subspace_outlier_data):
        _, point, subspace = subspace_outlier_data
        with pytest.raises(ValidationError):
            dimension_adjusted_quality(
                scorer, subspace, point, n_reference=2
            )
