"""Unit tests for repro.metrics.ranking."""

import pytest

from repro.exceptions import ValidationError
from repro.metrics.ranking import (
    average_precision,
    precision,
    precision_at_k,
    recall,
)


REL = [(0, 1), (2, 3)]


class TestPrecision:
    def test_all_relevant(self):
        assert precision([(0, 1), (2, 3)], REL) == 1.0

    def test_half_relevant(self):
        assert precision([(0, 1), (4, 5)], REL) == 0.5

    def test_empty_retrieved(self):
        assert precision([], REL) == 0.0

    def test_order_blind(self):
        assert precision([(4, 5), (0, 1)], REL) == precision(
            [(0, 1), (4, 5)], REL
        )

    def test_feature_order_normalised(self):
        assert precision([(1, 0)], REL) == 1.0

    def test_rejects_empty_relevant(self):
        with pytest.raises(ValidationError):
            precision([(0, 1)], [])


class TestPrecisionAtK:
    def test_basic(self):
        retrieved = [(0, 1), (4, 5), (2, 3)]
        assert precision_at_k(retrieved, REL, 1) == 1.0
        assert precision_at_k(retrieved, REL, 2) == 0.5
        assert precision_at_k(retrieved, REL, 3) == pytest.approx(2 / 3)

    def test_k_beyond_length(self):
        assert precision_at_k([(0, 1)], REL, 10) == 1.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValidationError):
            precision_at_k([(0, 1)], REL, 0)


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([(0, 1), (2, 3)], REL) == 1.0

    def test_perfect_then_noise(self):
        assert average_precision([(0, 1), (2, 3), (4, 5)], REL) == 1.0

    def test_relevant_buried(self):
        # Single relevant subspace at position 2: AP = (1/2) / 1.
        assert average_precision([(8, 9), (0, 1)], [(0, 1)]) == 0.5

    def test_paper_formula_worked_example(self):
        # rel at positions 1 and 3: AP = (1/1 + 2/3) / 2
        ap = average_precision([(0, 1), (7, 8), (2, 3)], REL)
        assert ap == pytest.approx((1.0 + 2 / 3) / 2)

    def test_nothing_retrieved(self):
        assert average_precision([], REL) == 0.0

    def test_duplicates_not_double_counted(self):
        ap = average_precision([(0, 1), (0, 1)], [(0, 1)])
        assert ap == 1.0

    def test_rank_sensitivity(self):
        # The same set retrieved in better order scores higher — the reason
        # the paper prefers MAP over flat recall.
        good = average_precision([(0, 1), (2, 3), (5, 6)], REL)
        bad = average_precision([(5, 6), (0, 1), (2, 3)], REL)
        assert good > bad

    def test_bounds(self):
        ap = average_precision([(5, 6), (0, 1)], REL)
        assert 0.0 <= ap <= 1.0


class TestRecall:
    def test_full(self):
        assert recall([(0, 1), (2, 3), (8, 9)], REL) == 1.0

    def test_partial(self):
        assert recall([(0, 1)], REL) == 0.5

    def test_none(self):
        assert recall([(6, 7)], REL) == 0.0

    def test_order_blind(self):
        assert recall([(2, 3), (0, 1)], REL) == recall([(0, 1), (2, 3)], REL)
