"""Unit tests for repro.neighbors.distance (scipy as oracle)."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist, squareform, pdist

from repro.exceptions import ValidationError
from repro.neighbors.distance import euclidean_cdist, euclidean_pdist_matrix


class TestCdist:
    def test_matches_scipy(self, rng):
        A = rng.normal(size=(30, 4))
        B = rng.normal(size=(20, 4))
        assert np.allclose(euclidean_cdist(A, B), cdist(A, B))

    def test_zero_for_identical_rows(self):
        A = np.array([[1.0, 2.0]])
        assert euclidean_cdist(A, A)[0, 0] == pytest.approx(0.0)

    def test_no_negative_sqrt_warnings(self, rng):
        # Nearly-identical points stress the cancellation clamp.
        A = rng.normal(size=(10, 3))
        B = A + 1e-12
        D = euclidean_cdist(A, B)
        assert np.isfinite(D).all()
        assert (D >= 0).all()

    def test_shape(self, rng):
        D = euclidean_cdist(rng.normal(size=(5, 2)), rng.normal(size=(7, 2)))
        assert D.shape == (5, 7)

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ValidationError, match="feature dimension"):
            euclidean_cdist(rng.normal(size=(3, 2)), rng.normal(size=(3, 3)))


class TestPdistMatrix:
    def test_matches_scipy(self, rng):
        X = rng.normal(size=(40, 5))
        assert np.allclose(euclidean_pdist_matrix(X), squareform(pdist(X)))

    def test_diagonal_exactly_zero(self, rng):
        D = euclidean_pdist_matrix(rng.normal(size=(25, 3)))
        assert (np.diag(D) == 0.0).all()

    def test_exactly_symmetric(self, rng):
        D = euclidean_pdist_matrix(rng.normal(size=(25, 3)))
        assert (D == D.T).all()

    def test_single_feature(self):
        D = euclidean_pdist_matrix([[0.0], [3.0]])
        assert D[0, 1] == pytest.approx(3.0)
