"""Unit tests for repro.neighbors.knn (scipy KD-tree as oracle)."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.exceptions import ValidationError
from repro.neighbors.knn import KNNIndex, kneighbors


class TestKneighbors:
    def test_matches_kdtree(self, rng):
        X = rng.normal(size=(80, 3))
        idx, dist = KNNIndex(X).kneighbors(7)
        ref_dist, ref_idx = cKDTree(X).query(X, k=8)
        assert np.allclose(dist, ref_dist[:, 1:])
        assert (idx == ref_idx[:, 1:]).all()

    def test_excludes_self(self, rng):
        X = rng.normal(size=(30, 2))
        idx, _ = KNNIndex(X).kneighbors(3)
        for i in range(30):
            assert i not in idx[i]

    def test_distances_sorted(self, rng):
        _, dist = kneighbors(rng.normal(size=(40, 2)), 5)
        assert (np.diff(dist, axis=1) >= 0).all()

    def test_k_equals_n_minus_one(self, rng):
        X = rng.normal(size=(6, 2))
        idx, _ = KNNIndex(X).kneighbors(5)
        assert idx.shape == (6, 5)

    def test_k_too_large(self, rng):
        with pytest.raises(ValidationError, match="exceeds"):
            KNNIndex(rng.normal(size=(5, 2))).kneighbors(5)

    def test_duplicates_handled(self):
        X = np.array([[0.0, 0.0]] * 4 + [[1.0, 1.0]])
        idx, dist = KNNIndex(X).kneighbors(2)
        assert dist[0, 0] == pytest.approx(0.0)
        assert 0 not in idx[0]  # self still excluded despite ties

    def test_deterministic_tie_break(self):
        # Three equidistant points: tie broken by index.
        X = np.array([[0.0, 0.0], [1.0, 0.0], [-1.0, 0.0], [0.0, 1.0]])
        idx, _ = KNNIndex(X).kneighbors(3)
        assert list(idx[0]) == [1, 2, 3]

    def test_kth_distance(self, rng):
        X = rng.normal(size=(20, 2))
        index = KNNIndex(X)
        _, dist = index.kneighbors(4)
        assert np.allclose(index.kth_distance(4), dist[:, -1])


class TestQuery:
    def test_external_query(self, rng):
        X = rng.normal(size=(50, 3))
        Q = rng.normal(size=(5, 3))
        idx, dist = KNNIndex(X).query(Q, 4)
        ref_dist, ref_idx = cKDTree(X).query(Q, k=4)
        assert np.allclose(dist, ref_dist)
        assert (idx == ref_idx).all()

    def test_query_self_at_zero(self, rng):
        X = rng.normal(size=(10, 2))
        idx, dist = KNNIndex(X).query(X[:1], 1)
        assert idx[0, 0] == 0
        assert dist[0, 0] == pytest.approx(0.0)

    def test_query_allows_k_equals_n(self, rng):
        X = rng.normal(size=(5, 2))
        idx, _ = KNNIndex(X).query(X[:2], 5)
        assert idx.shape == (2, 5)
