"""Tests for the shared distance substrate (repro.neighbors.provider)."""

import pickle

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.neighbors.knn import _smallest_k
from repro.neighbors.provider import (
    DIST_CACHE_MB_ENV,
    DistanceProvider,
    KNNQueryView,
    resolve_dist_cache_bytes,
    shared_provider,
)
from repro.utils.caching import LRUCache


@pytest.fixture
def X():
    rng = np.random.default_rng(42)
    return rng.normal(size=(50, 8))


def direct_sq(X, features):
    """Reference squared distances of a projection, diagonal +inf."""
    P = X[:, list(features)]
    diff = P[:, None, :] - P[None, :, :]
    sq = (diff**2).sum(axis=2)
    np.fill_diagonal(sq, np.inf)
    return sq


class TestFeatureBlocks:
    def test_block_values_and_layout(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 22)
        block = provider.feature_block(3)
        assert block.dtype == np.float32
        assert not block.flags.writeable
        expected = (X[:, 3, None] - X[None, :, 3]) ** 2
        np.testing.assert_allclose(block, expected, rtol=1e-6)
        assert np.all(np.diag(block) == 0.0)

    def test_block_cached_once(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 22)
        a = provider.feature_block(0)
        b = provider.feature_block(0)
        assert a is b
        stats = provider.stats()
        assert stats["block_misses"] == 1
        assert stats["block_hits"] == 1

    def test_block_out_of_range(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 22)
        with pytest.raises(ValidationError):
            provider.feature_block(99)


class TestComposition:
    def test_matches_direct_projection(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        rng = np.random.default_rng(0)
        for _ in range(20):
            dim = int(rng.integers(1, 7))
            sub = tuple(sorted(rng.choice(8, size=dim, replace=False).tolist()))
            sq = provider.squared_distances(sub)
            ref = direct_sq(X, sub)
            off = ~np.eye(len(X), dtype=bool)
            np.testing.assert_allclose(sq[off], ref[off], rtol=1e-5, atol=1e-5)
            assert np.all(np.isinf(np.diag(sq)))
            assert not sq.flags.writeable

    def test_unsorted_input_canonicalised(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        a = provider.squared_distances((4, 1, 6))
        b = provider.squared_distances((1, 4, 6))
        assert a is b  # same cache entry

    def test_composed_cached(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        a = provider.squared_distances((1, 2))
        b = provider.squared_distances((1, 2))
        assert a is b
        stats = provider.stats()
        assert stats["composed_misses"] == 1
        assert stats["composed_hits"] == 1


class TestCanonicalChain:
    """Composed values must not depend on cache state or construction route."""

    def test_parent_route_is_byte_identical(self, X):
        fresh = DistanceProvider(X, max_bytes=1 << 24)
        direct = fresh.squared_distances((0, 2, 5))

        warmed = DistanceProvider(X, max_bytes=1 << 24)
        warmed.squared_distances((0, 2))
        via_parent = warmed.squared_distances((0, 2, 5), parent=(0, 2))
        assert warmed.stats()["parent_reuses"] == 1
        assert direct.tobytes() == via_parent.tobytes()

    def test_prefix_walk_is_byte_identical(self, X):
        fresh = DistanceProvider(X, max_bytes=1 << 24)
        direct = fresh.squared_distances((1, 3, 4, 6))

        walked = DistanceProvider(X, max_bytes=1 << 24)
        walked.squared_distances((1,))
        walked.squared_distances((1, 3))
        walked.squared_distances((1, 3, 4))
        chained = walked.squared_distances((1, 3, 4, 6))  # no explicit hint
        # (1,3) extended (1,), (1,3,4) extended (1,3), and the final call
        # found (1,3,4) via the prefix walk: three reuses.
        assert walked.stats()["parent_reuses"] == 3
        assert direct.tobytes() == chained.tobytes()

    def test_non_prefix_parent_hint_is_ignored_safely(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        provider.squared_distances((2, 5))
        # (2, 5) is not a sorted prefix of (1, 2, 5): reuse must not occur,
        # because float addition in a different order would change bits.
        out = provider.squared_distances((1, 2, 5), parent=(2, 5))
        assert provider.stats()["parent_reuses"] == 0
        ref = DistanceProvider(X, max_bytes=1 << 24).squared_distances((1, 2, 5))
        assert out.tobytes() == ref.tobytes()

    def test_eviction_does_not_change_values(self, X):
        reference = DistanceProvider(X, max_bytes=1 << 24)
        ref = reference.squared_distances((0, 1, 2, 3))

        # Budget fits only ~2 blocks: constant eviction churn.
        tiny_budget = 3 * X.shape[0] * X.shape[0] * 4
        churner = DistanceProvider(X, max_bytes=tiny_budget)
        for sub in [(0, 1), (2, 3), (4, 5), (6, 7), (0, 3), (1, 2)]:
            churner.squared_distances(sub)
        out = churner.squared_distances((0, 1, 2, 3))
        assert churner.stats()["evictions"] > 0
        assert out.tobytes() == ref.tobytes()


class TestBudgetAccounting:
    def test_lru_eviction_respects_budget(self, X):
        n = X.shape[0]
        budget = 3 * n * n * 4  # three float32 blocks
        provider = DistanceProvider(X, max_bytes=budget)
        for f in range(8):
            provider.feature_block(f)
        stats = provider.stats()
        assert stats["evictions"] >= 5
        assert stats["nbytes"] <= budget
        assert stats["blocks"] <= 3

    def test_stats_track_kinds_separately(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        provider.squared_distances((0, 1))
        stats = provider.stats()
        assert stats["blocks"] == 2
        assert stats["composed"] == 1
        n = X.shape[0]
        # Two float32 blocks plus one float32 composed matrix.
        assert stats["nbytes"] == 3 * n * n * 4

    def test_clear_resets(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        provider.squared_distances((0, 1))
        provider.clear()
        stats = provider.stats()
        assert stats["blocks"] == 0
        assert stats["composed"] == 0
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_lru_on_evict_callback(self):
        evicted = []
        cache = LRUCache(
            2 * 800, name=None, on_evict=lambda k, v: evicted.append(k)
        )
        for i in range(4):
            cache.put(("b", i), np.zeros(100))  # 800 bytes each
        assert evicted == [("b", 0), ("b", 1)]
        assert cache.evictions == 2


class TestCoversAndDisable:
    def test_covers_is_dimensionality_cutoff(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24, max_compose_dim=3)
        assert provider.covers((0,))
        assert provider.covers((0, 1, 2))
        assert not provider.covers((0, 1, 2, 3))

    def test_env_zero_disables(self, X, monkeypatch):
        monkeypatch.setenv(DIST_CACHE_MB_ENV, "0")
        assert resolve_dist_cache_bytes() == 0
        assert shared_provider(X) is None

    def test_env_invalid_raises(self, monkeypatch):
        monkeypatch.setenv(DIST_CACHE_MB_ENV, "lots")
        with pytest.raises(ValidationError):
            resolve_dist_cache_bytes()

    def test_tiny_budget_disables(self, X):
        # Cannot hold a minimal working set: substrate declines.
        assert shared_provider(X, max_bytes=100) is None

    def test_zero_budget_constructor_rejected(self, X):
        with pytest.raises(ValidationError):
            DistanceProvider(X, max_bytes=0)


class TestSharing:
    def test_same_content_shares_instance(self, X):
        a = shared_provider(X, max_bytes=1 << 24)
        b = shared_provider(X.copy(), max_bytes=1 << 24)
        assert a is not None and a is b

    def test_different_content_distinct(self, X):
        a = shared_provider(X, max_bytes=1 << 24)
        b = shared_provider(X + 1.0, max_bytes=1 << 24)
        assert a is not None and b is not None and a is not b


class TestPickling:
    def test_pickle_drops_cache_but_preserves_bits(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        original = provider.squared_distances((1, 4))
        clone = pickle.loads(pickle.dumps(provider))
        assert len(clone._cache) == 0  # cache state not shipped
        assert clone.stats()["hits"] == 0
        rebuilt = clone.squared_distances((1, 4))
        assert rebuilt.tobytes() == original.tobytes()

    def test_pickle_preserves_sketch_factor(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24, sketch_factor=5)
        clone = pickle.loads(pickle.dumps(provider))
        assert clone.sketch_factor == 5


def reference_knn(provider, features, k):
    """Ground-truth k-NN from the composed matrix (the full path)."""
    D = provider.squared_distances(features)
    order = _smallest_k(D, k)
    sq = np.take_along_axis(D, order, axis=1)
    return order, np.sqrt(sq)


class TestCertifiedSketches:
    """kneighbors must be bit-identical to the full path in every regime."""

    def test_sketched_query_is_byte_identical(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        rng = np.random.default_rng(3)
        for _ in range(25):
            d = int(rng.integers(2, 5))
            s = tuple(sorted(rng.choice(8, size=d, replace=False).tolist()))
            k = int(rng.integers(2, 20))
            idx, dist = provider.kneighbors(s, k)
            ref_idx, ref_dist = reference_knn(provider, s, k)
            assert idx.tobytes() == ref_idx.tobytes()
            assert dist.tobytes() == ref_dist.tobytes()
        assert provider.stats()["knn_sketched"] == 25

    def test_hint_choice_cannot_change_bits(self, X):
        s, k = (1, 3, 5, 7), 8
        baseline = DistanceProvider(X, max_bytes=1 << 24).kneighbors(s, k)
        for hint in (None, (1,), (3, 7), (1, 3, 5), (5,)):
            provider = DistanceProvider(X, max_bytes=1 << 24)
            idx, dist = provider.kneighbors(s, k, parent=hint)
            assert idx.tobytes() == baseline[0].tobytes()
            assert dist.tobytes() == baseline[1].tobytes()

    def test_constant_parent_all_rows_fall_back_exactly(self):
        # A constant anchor feature puts every pairwise parent distance at
        # zero: no row can certify (bound == 0), so all of them take the
        # full-row fallback — and the answer must still be exact.
        rng = np.random.default_rng(9)
        X = rng.normal(size=(60, 4))
        X[:, 0] = 2.5
        provider = DistanceProvider(X, max_bytes=1 << 24)
        idx, dist = provider.kneighbors((0, 2), 6)  # implicit parent (0,)
        ref_idx, ref_dist = reference_knn(provider, (0, 2), 6)
        assert idx.tobytes() == ref_idx.tobytes()
        assert dist.tobytes() == ref_dist.tobytes()
        stats = provider.stats()
        assert stats["knn_fallback_rows"] == X.shape[0]

    def test_duplicated_points_boundary_ties_exact(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(80, 5))
        X[20:30] = X[10:20]  # exact duplicates: distance ties everywhere
        provider = DistanceProvider(X, max_bytes=1 << 24)
        for s in [(0, 1), (1, 2, 4), (0, 2, 3, 4)]:
            idx, dist = provider.kneighbors(s, 7)
            ref_idx, ref_dist = reference_knn(provider, s, 7)
            assert idx.tobytes() == ref_idx.tobytes()
            assert dist.tobytes() == ref_dist.tobytes()

    def test_single_feature_uses_full_path(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        idx, dist = provider.kneighbors((4,), 5)
        ref_idx, ref_dist = reference_knn(provider, (4,), 5)
        assert idx.tobytes() == ref_idx.tobytes()
        stats = provider.stats()
        assert stats["knn_full"] == 1
        assert stats["knn_sketched"] == 0

    def test_large_k_uses_full_path(self, X):
        # k at the sketch-width cap leaves no certification headroom; the
        # provider must answer from the composed matrix instead.
        n = X.shape[0]
        provider = DistanceProvider(X, max_bytes=1 << 24)
        idx, dist = provider.kneighbors((2, 5), n - 1)
        ref_idx, ref_dist = reference_knn(provider, (2, 5), n - 1)
        assert idx.tobytes() == ref_idx.tobytes()
        assert provider.stats()["knn_full"] == 1

    def test_sketch_cached_per_anchor(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        provider.kneighbors((1, 3), 5, parent=(1,))
        provider.kneighbors((1, 4), 5, parent=(1,))  # same anchor, same m
        stats = provider.stats()
        assert stats["sketch_misses"] == 1
        assert stats["sketch_hits"] == 1
        assert stats["sketches"] == 1

    def test_invalid_k_rejected(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        with pytest.raises(ValidationError):
            provider.kneighbors((0, 1), 0)
        with pytest.raises(ValidationError):
            provider.kneighbors((0, 1), X.shape[0])

    def test_invalid_sketch_factor_rejected(self, X):
        with pytest.raises(ValidationError):
            DistanceProvider(X, max_bytes=1 << 24, sketch_factor=1)

    def test_knn_view_delegates(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        view = provider.knn_view((2, 6), parent=(2,))
        assert isinstance(view, KNNQueryView)
        assert view.n_samples == X.shape[0]
        idx, dist = view.kneighbors(4)
        ref_idx, ref_dist = provider.kneighbors((2, 6), 4, parent=(2,))
        assert idx.tobytes() == ref_idx.tobytes()
        assert dist.tobytes() == ref_dist.tobytes()
