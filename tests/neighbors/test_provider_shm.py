"""Provider pickling through the shared-memory plane: same bits, fewer bytes."""

import pickle

import numpy as np
import pytest

from repro.detectors import LOF
from repro.exec import resolve_backend
from repro.neighbors.provider import DistanceProvider
from repro.shm import SHM_ENV, get_plane
from repro.subspaces import SubspaceScorer
from repro.subspaces.enumeration import all_subspaces


@pytest.fixture
def X():
    rng = np.random.default_rng(11)
    return rng.standard_normal((90, 6))


@pytest.fixture
def published(X):
    """A fully warmed, published provider; plane cleaned up afterwards."""
    provider = DistanceProvider(X, max_bytes=1 << 24)
    provider.warm_blocks()
    plane = get_plane()
    keys = provider.publish_shared(plane)
    lease = plane.lease(keys)
    yield provider
    lease.release()
    plane.cleanup()


def _round_trip(provider):
    return pickle.loads(pickle.dumps(provider))


class TestPickleAttach:
    def test_refs_replace_bytes(self, published, X):
        blob = pickle.dumps(published)
        # 6 warm blocks of 90*90 float32 plus the matrix would dominate
        # a byte-shipping pickle; refs keep it tiny.
        assert len(blob) < X.nbytes

    def test_matrix_and_blocks_byte_identical(self, published, X):
        clone = _round_trip(published)
        np.testing.assert_array_equal(clone.X, X)
        for feature in range(X.shape[1]):
            np.testing.assert_array_equal(
                clone.feature_block(feature), published.feature_block(feature)
            )
        # The blocks arrived warm: serving them touched no misses.
        assert clone.stats()["block_misses"] == 0

    def test_distances_byte_identical_vs_recompute(self, published, X):
        clone = _round_trip(published)
        fresh = DistanceProvider(X.copy(), max_bytes=1 << 24)
        for subspace in [(0,), (1, 3), (0, 2, 5)]:
            np.testing.assert_array_equal(
                clone.squared_distances(subspace),
                fresh.squared_distances(subspace),
            )

    def test_kneighbors_byte_identical_vs_recompute(self, published, X):
        clone = _round_trip(published)
        fresh = DistanceProvider(X.copy(), max_bytes=1 << 24)
        for subspace in [(0, 1), (2, 4, 5)]:
            got_d, got_i = clone.kneighbors(subspace, 7)
            want_d, want_i = fresh.kneighbors(subspace, 7)
            np.testing.assert_array_equal(got_d, want_d)
            np.testing.assert_array_equal(got_i, want_i)

    def test_disabled_ships_bytes_same_values(self, published, X, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "0")
        clone = _round_trip(published)
        np.testing.assert_array_equal(clone.X, X)
        np.testing.assert_array_equal(
            clone.squared_distances((1, 4)), published.squared_distances((1, 4))
        )

    def test_vanished_segment_is_loud(self, X):
        provider = DistanceProvider(X, max_bytes=1 << 24)
        plane = get_plane()
        provider.publish_shared(plane)
        blob = pickle.dumps(provider)
        plane.cleanup()  # lease discipline violated on purpose
        with pytest.raises(RuntimeError, match="vanished before attach"):
            pickle.loads(blob)

    def test_sketch_off_equivalent(self, published, X):
        # REPRO_SKETCH_FACTOR=0 path: the attached provider and a
        # sketch-free rebuild serve the same exact canonical k-NN.
        clone = _round_trip(published)
        plain = DistanceProvider(X.copy(), max_bytes=1 << 24, sketch_factor=0)
        got_d, got_i = clone.kneighbors((0, 3), 5)
        want_d, want_i = plain.kneighbors((0, 3), 5)
        np.testing.assert_array_equal(got_d, want_d)
        np.testing.assert_array_equal(got_i, want_i)


class TestScorerEquivalence:
    """Scores are bit-equal whether workers attach or recompute."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_scores_identical_across_backends(self, X, backend):
        subspaces = list(all_subspaces(X.shape[1], 2))
        # Bit-identity is a contract of the provider path: the reference
        # is a cold provider-backed serial scorer, nothing published.
        baseline_scorer = SubspaceScorer(
            X, LOF(k=10), backend="serial",
            distance_provider=DistanceProvider(X.copy(), max_bytes=1 << 24),
        )
        baseline = baseline_scorer.scores_many(subspaces)
        provider = DistanceProvider(X, max_bytes=1 << 24)
        scorer = SubspaceScorer(
            X, LOF(k=10), distance_provider=provider,
            backend=resolve_backend(backend, None if backend == "serial" else 2),
        )
        try:
            scorer.prewarm_shared()
            scores = scorer.scores_many(subspaces)
            for got, want in zip(scores, baseline):
                np.testing.assert_array_equal(got, want)
        finally:
            scorer.backend.close()
            get_plane().cleanup()
