"""Unit tests for repro.obs.export."""

import json

from repro.obs.export import (
    render_prometheus,
    spans_to_jsonl,
    write_metrics_text,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def make_trace():
    tracer = Tracer(clock=iter([0.0, 1.0, 2.0, 4.0]).__next__)
    with tracer.span("outer", dataset="hics_14"):
        with tracer.span("inner", subspace=(2, 4)):
            pass
    return tracer


class TestJsonl:
    def test_one_line_per_span(self):
        text = spans_to_jsonl(make_trace().spans)
        lines = text.strip().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert [r["name"] for r in records] == ["inner", "outer"]

    def test_required_fields_and_linkage(self):
        records = [
            json.loads(line)
            for line in spans_to_jsonl(make_trace().spans).strip().splitlines()
        ]
        for record in records:
            assert set(record) == {
                "name", "span_id", "parent_id", "start_s", "duration_s",
                "attributes",
            }
        inner, outer = records
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert inner["duration_s"] == 1.0

    def test_non_json_attributes_coerced(self):
        # tuples become lists; arbitrary objects become strings
        records = [
            json.loads(line)
            for line in spans_to_jsonl(make_trace().spans).strip().splitlines()
        ]
        assert records[0]["attributes"]["subspace"] == [2, 4]

        tracer = Tracer()
        with tracer.span("x", obj=object()):
            pass
        record = json.loads(spans_to_jsonl(tracer.spans))
        assert isinstance(record["attributes"]["obj"], str)

    def test_empty_trace_is_empty_text(self):
        assert spans_to_jsonl([]) == ""

    def test_write_trace_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace_jsonl(make_trace().spans, str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["name"] == "inner"


class TestPrometheus:
    def test_counter_rendering(self):
        registry = MetricsRegistry()
        registry.counter("demo_total", "A demo counter").inc(3)
        text = render_prometheus(registry)
        assert "# HELP demo_total A demo counter" in text
        assert "# TYPE demo_total counter" in text
        assert "demo_total 3" in text

    def test_labelled_counter(self):
        registry = MetricsRegistry()
        c = registry.counter("demo_total")
        c.inc(2, cache="scorer")
        assert 'demo_total{cache="scorer"} 2' in render_prometheus(registry)

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("demo_total").inc(1, k='quo"te\nnl')
        text = render_prometheus(registry)
        assert r'demo_total{k="quo\"te\nnl"} 1' in text

    def test_never_incremented_counter_renders_zero(self):
        registry = MetricsRegistry()
        registry.counter("demo_total")
        assert "demo_total 0" in render_prometheus(registry)

    def test_histogram_rendering(self):
        registry = MetricsRegistry()
        h = registry.histogram("demo_seconds", buckets=(1.0, 5.0))
        h.observe(0.5)
        h.observe(3.0)
        h.observe(100.0)
        text = render_prometheus(registry)
        assert 'demo_seconds_bucket{le="1"} 1' in text
        assert 'demo_seconds_bucket{le="5"} 2' in text
        assert 'demo_seconds_bucket{le="+Inf"} 3' in text
        assert "demo_seconds_sum 103.5" in text
        assert "demo_seconds_count 3" in text

    def test_empty_histogram_advertises_shape(self):
        registry = MetricsRegistry()
        registry.histogram("demo_seconds", buckets=(1.0,))
        text = render_prometheus(registry)
        assert 'demo_seconds_bucket{le="1"} 0' in text
        assert 'demo_seconds_bucket{le="+Inf"} 0' in text
        assert "demo_seconds_sum 0" in text
        assert "demo_seconds_count 0" in text

    def test_labelled_histogram_keeps_le_with_labels(self):
        registry = MetricsRegistry()
        registry.histogram("demo_seconds", buckets=(1.0,)).observe(
            0.5, detector="lof"
        )
        text = render_prometheus(registry)
        assert 'demo_seconds_bucket{detector="lof",le="1"} 1' in text

    def test_metrics_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zzz_total").inc()
        registry.counter("aaa_total").inc()
        text = render_prometheus(registry)
        assert text.index("aaa_total") < text.index("zzz_total")

    def test_defaults_to_global_registry(self):
        from repro.obs import metrics as obs_metrics

        obs_metrics.counter("repro_test_export_demo_total").inc(7)
        try:
            assert "repro_test_export_demo_total 7" in render_prometheus()
        finally:
            obs_metrics.reset()

    def test_write_metrics_text(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("demo_total").inc(2)
        path = tmp_path / "metrics.txt"
        write_metrics_text(str(path), registry)
        assert "demo_total 2" in path.read_text()

    def test_empty_registry_renders_empty_text(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_label_ordering_is_deterministic(self):
        # The same label set in any insertion order is one time series
        # with one canonical (sorted) rendering, not two samples.
        registry = MetricsRegistry()
        c = registry.counter("demo_total")
        c.inc(1, b="1", a="2")
        c.inc(1, a="2", b="1")
        text = render_prometheus(registry)
        assert 'demo_total{a="2",b="1"} 2' in text
        assert text.count("demo_total{") == 1

    def test_backslash_escaping_in_label_values(self):
        registry = MetricsRegistry()
        registry.counter("demo_total").inc(1, path="a\\b")
        assert 'demo_total{path="a\\\\b"} 1' in render_prometheus(registry)

    def test_histogram_buckets_are_cumulative(self):
        import re

        registry = MetricsRegistry()
        h = registry.histogram("demo_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        text = render_prometheus(registry)
        bucket = re.compile(r'demo_seconds_bucket\{le="([^"]+)"\} (\d+)')
        counts = [int(m.group(2)) for m in bucket.finditer(text)]
        assert counts == sorted(counts)  # cumulative, not per-bucket
        assert counts == [1, 3, 4, 5]
        assert "demo_seconds_count 5" in text

    def test_every_sample_line_is_well_formed(self):
        import re

        registry = MetricsRegistry()
        registry.counter("demo_total").inc(1, cache="scorer")
        registry.gauge("demo_gauge").set(-1.5)
        registry.histogram("demo_seconds", buckets=(1.0,)).observe(0.2)
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (\+Inf|-Inf|-?[0-9.eE+-]+)$"
        )
        for line in render_prometheus(registry).splitlines():
            if not line or line.startswith("#"):
                continue
            assert sample.match(line), line
