"""Unit tests for repro.obs.heartbeat (threadless mode, injectable clock)."""

import io
import json

import pytest

from repro.obs.heartbeat import (
    HEARTBEAT_ENV,
    HEARTBEAT_JSONL_ENV,
    Heartbeat,
    heartbeat_from_env,
    heartbeat_interval_from_env,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def make_heartbeat(total=10, interval=5.0, jsonl=None):
    clock = FakeClock()
    stream = io.StringIO()
    hb = Heartbeat(
        total,
        interval_s=interval,
        stream=stream,
        jsonl_path=jsonl,
        clock=clock,
        thread=False,
    )
    return hb, clock, stream


class TestEnvParsing:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(HEARTBEAT_ENV, raising=False)
        assert heartbeat_interval_from_env() is None
        assert heartbeat_from_env(10) is None

    @pytest.mark.parametrize("value", ["", "0", "-3", "not-a-number"])
    def test_bad_values_mean_disabled(self, monkeypatch, value):
        monkeypatch.setenv(HEARTBEAT_ENV, value)
        assert heartbeat_interval_from_env() is None

    def test_positive_value_enables(self, monkeypatch):
        monkeypatch.setenv(HEARTBEAT_ENV, "2.5")
        assert heartbeat_interval_from_env() == 2.5

    def test_from_env_builds_a_started_heartbeat(self, monkeypatch, tmp_path):
        monkeypatch.setenv(HEARTBEAT_ENV, "60")
        monkeypatch.setenv(HEARTBEAT_JSONL_ENV, str(tmp_path / "hb.jsonl"))
        hb = heartbeat_from_env(4)
        try:
            assert hb is not None
            assert hb.interval_s == 60.0
            assert hb.jsonl_path == str(tmp_path / "hb.jsonl")
        finally:
            hb.stop(final_beat=False)


class TestAccounting:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            Heartbeat(10, interval_s=0.0, thread=False)

    def test_counts_flow_into_the_record(self):
        hb, clock, _ = make_heartbeat(total=8)
        hb.cells_done(3)
        hb.cells_done(1, failed=1)
        hb.cells_done(2, replayed=2)
        hb.cells_done(1, skipped=1)
        clock.advance(10.0)
        record = hb.emit()
        assert record["done"] == 7
        assert record["total"] == 8
        assert record["failed"] == 1
        assert record["skipped"] == 1
        assert record["replayed"] == 2
        assert record["elapsed_s"] == 10.0
        assert record["beat"] == 1

    def test_reduce_total(self):
        hb, clock, _ = make_heartbeat(total=10)
        hb.reduce_total(4)
        clock.advance(1.0)
        assert hb.emit()["total"] == 6

    def test_rate_and_eta(self):
        hb, clock, _ = make_heartbeat(total=10)
        hb.cells_done(5)
        clock.advance(5.0)
        record = hb.emit()
        assert record["cells_per_s"] == pytest.approx(1.0)
        assert record["eta_s"] == pytest.approx(5.0)

    def test_eta_is_none_before_any_progress(self):
        hb, clock, _ = make_heartbeat(total=10)
        clock.advance(1.0)
        assert hb.emit()["eta_s"] is None


class TestEmission:
    def test_maybe_emit_respects_the_interval(self):
        hb, clock, stream = make_heartbeat(interval=5.0)
        assert hb.maybe_emit() is None  # nothing elapsed yet
        clock.advance(4.9)
        assert hb.maybe_emit() is None
        clock.advance(0.2)
        assert hb.maybe_emit() is not None
        assert hb.maybe_emit() is None  # interval restarts after a beat
        assert hb.beats == 1

    def test_human_line_lands_on_the_stream(self):
        hb, clock, stream = make_heartbeat(total=4)
        hb.cells_done(2)
        clock.advance(2.0)
        hb.emit()
        line = stream.getvalue()
        assert line.startswith("[heartbeat] 2/4 cells")
        assert "hit-rates" in line

    def test_jsonl_sink_appends_one_record_per_beat(self, tmp_path):
        path = tmp_path / "nested" / "hb.jsonl"
        hb, clock, _ = make_heartbeat(total=4, jsonl=str(path))
        for beat in (1, 2):
            hb.cells_done(1)
            clock.advance(5.0)
            hb.emit()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["beat"] for r in records] == [1, 2]
        assert [r["done"] for r in records] == [1, 2]
        assert all("cache_hit_rates" in r for r in records)

    def test_stop_emits_a_final_beat(self):
        hb, clock, stream = make_heartbeat(total=2)
        hb.cells_done(2)
        clock.advance(1.0)
        hb.stop()
        assert hb.beats == 1
        assert "2/2 cells" in stream.getvalue()

    def test_stop_without_final_beat(self):
        hb, _, stream = make_heartbeat()
        hb.stop(final_beat=False)
        assert stream.getvalue() == ""

    def test_context_manager(self):
        hb, clock, stream = make_heartbeat(total=1)
        with hb:
            hb.cells_done(1)
            clock.advance(1.0)
        assert hb.beats == 1
