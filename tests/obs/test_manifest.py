"""Unit tests for repro.obs.manifest and its repro.ft journal embedding."""

import dataclasses
import json

from repro.datasets import load_dataset
from repro.ft import CheckpointJournal
from repro.obs import metrics as obs_metrics
from repro.obs.manifest import RunManifest, git_revision, manifest_mismatches
from repro.obs.snapshot import run_snapshot


class TestCollect:
    def test_core_fields_are_populated(self):
        manifest = RunManifest.collect()
        assert manifest.python
        assert manifest.numpy
        assert manifest.platform
        assert manifest.created_unix > 0
        assert isinstance(manifest.argv, tuple)

    def test_env_keeps_only_repro_variables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_MANIFEST", "x")
        monkeypatch.setenv("OTHER_VARIABLE", "y")
        manifest = RunManifest.collect()
        assert manifest.env["REPRO_TEST_MANIFEST"] == "x"
        assert "OTHER_VARIABLE" not in manifest.env

    def test_backend_read_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "thread")
        monkeypatch.setenv("REPRO_N_JOBS", "3")
        manifest = RunManifest.collect()
        assert manifest.backend == "thread"
        assert manifest.n_jobs == 3

    def test_dataset_fingerprints(self):
        dataset = load_dataset("hics_14")
        manifest = RunManifest.collect(datasets=[dataset])
        name, content_hash = dataset.fingerprint
        assert manifest.datasets == {name: content_hash}

    def test_objects_without_fingerprints_are_skipped(self):
        manifest = RunManifest.collect(datasets=[object()])
        assert manifest.datasets == {}

    def test_git_revision_in_this_repo(self):
        rev = git_revision()
        assert rev is None or (len(rev) == 40 and int(rev, 16) >= 0)


class TestSerialisation:
    def test_dict_round_trip(self):
        manifest = RunManifest.collect()
        assert RunManifest.from_dict(manifest.as_dict()) == manifest

    def test_as_dict_is_json_encodable(self):
        assert json.loads(json.dumps(RunManifest.collect().as_dict()))

    def test_from_dict_tolerates_missing_fields(self):
        manifest = RunManifest.from_dict({})
        assert manifest.python == ""
        assert manifest.git_rev is None

    def test_compact_stamp_shape(self):
        stamp = RunManifest.collect().compact()
        assert sorted(stamp) == ["date", "git_rev", "numpy", "python"]
        year, month, day = stamp["date"].split("-")
        assert len(year) == 4 and len(month) == 2 and len(day) == 2

    def test_write(self, tmp_path):
        path = tmp_path / "deep" / "manifest.json"
        manifest = RunManifest.collect()
        manifest.write(str(path))
        assert RunManifest.from_dict(json.loads(path.read_text())) == manifest


class TestMismatches:
    def test_identical_manifests_have_no_mismatches(self):
        manifest = RunManifest.collect()
        assert manifest_mismatches(manifest, manifest) == []

    def test_volatile_fields_are_ignored(self):
        manifest = RunManifest.collect()
        later = dataclasses.replace(
            manifest, created_unix=manifest.created_unix + 100, argv=("other",)
        )
        assert manifest_mismatches(manifest, later) == []

    def test_substantive_drift_is_reported(self):
        manifest = RunManifest.collect()
        drifted = dataclasses.replace(
            manifest, numpy="9.9.9", env={"REPRO_BACKEND": "process"}
        )
        problems = manifest_mismatches(manifest, drifted)
        assert any(p.startswith("numpy:") for p in problems)
        assert any(p.startswith("env:") for p in problems)


class TestJournalHeader:
    def test_fresh_journal_records_the_manifest(self, tmp_path):
        path = str(tmp_path / "grid.journal")
        journal = CheckpointJournal(path)
        assert journal.ensure_manifest() == []
        assert journal.manifest is not None
        lines = [json.loads(line) for line in open(path)]
        assert lines[0]["kind"] == "manifest"

    def test_manifest_round_trips_through_the_header(self, tmp_path):
        """Acceptance: manifest fields survive journal write + reload."""
        path = str(tmp_path / "grid.journal")
        original = CheckpointJournal(path)
        original.ensure_manifest()
        reloaded = CheckpointJournal(path, resume=True)
        assert reloaded.manifest == original.manifest

    def test_matching_resume_is_silent(self, tmp_path):
        path = str(tmp_path / "grid.journal")
        CheckpointJournal(path).ensure_manifest()
        resumed = CheckpointJournal(path, resume=True)
        assert resumed.ensure_manifest() == []

    def test_drifted_resume_warns_and_counts(self, tmp_path, capsys):
        path = str(tmp_path / "grid.journal")
        journal = CheckpointJournal(path)
        drifted = dataclasses.replace(RunManifest.collect(), numpy="9.9.9")
        journal.ensure_manifest(drifted)
        obs_metrics.reset()
        try:
            resumed = CheckpointJournal(path, resume=True)
            problems = resumed.ensure_manifest()
            assert any(p.startswith("numpy:") for p in problems)
            assert "WARNING" in capsys.readouterr().err
            assert run_snapshot()["ft"]["manifest_mismatches"] == 1
        finally:
            obs_metrics.reset()

    def test_corrupt_header_does_not_break_resume(self, tmp_path):
        path = tmp_path / "grid.journal"
        path.write_text(
            json.dumps({"v": 1, "kind": "manifest", "record": "not-a-dict"})
            + "\n"
        )
        journal = CheckpointJournal(str(path), resume=True)
        assert journal.manifest is None
