"""Unit tests for repro.obs.metrics."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("demo_total")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_labelled_series_are_separate(self):
        c = Counter("demo_total")
        c.inc(cache="scorer")
        c.inc(3, cache="other")
        assert c.value(cache="scorer") == 1.0
        assert c.value(cache="other") == 3.0
        assert c.value() == 0.0

    def test_label_order_is_canonical(self):
        c = Counter("demo_total")
        c.inc(a=1, b=2)
        assert c.value(b=2, a=1) == 1.0

    def test_rejects_negative(self):
        c = Counter("demo_total")
        with pytest.raises(ValidationError):
            c.inc(-1)

    def test_rejects_bad_metric_name(self):
        with pytest.raises(ValidationError):
            Counter("bad-name")

    def test_rejects_bad_label_name(self):
        c = Counter("demo_total")
        with pytest.raises(ValidationError):
            c.inc(**{"bad-label": 1})

    def test_reset_zeroes(self):
        c = Counter("demo_total")
        c.inc(5, k="v")
        c.reset()
        assert c.value(k="v") == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("demo_gauge")
        g.set(10)
        g.inc(2)
        g.dec(7)
        assert g.value() == 5.0

    def test_can_go_negative(self):
        g = Gauge("demo_gauge")
        g.dec(3)
        assert g.value() == -3.0

    def test_labels(self):
        g = Gauge("demo_gauge")
        g.set(1, detector="lof")
        g.set(2, detector="iforest")
        assert g.value(detector="lof") == 1.0
        assert g.value(detector="iforest") == 2.0


class TestHistogram:
    def test_observe_count_sum(self):
        h = Histogram("demo_seconds", buckets=(1.0, 5.0))
        h.observe(0.5)
        h.observe(3.0)
        h.observe(100.0)
        assert h.count() == 3
        assert h.sum() == pytest.approx(103.5)

    def test_cumulative_buckets(self):
        h = Histogram("demo_seconds", buckets=(1.0, 5.0))
        h.observe(0.5)
        h.observe(3.0)
        h.observe(100.0)
        buckets = h.cumulative_buckets()
        assert buckets == [(1.0, 1), (5.0, 2), (math.inf, 3)]

    def test_boundary_lands_in_le_bucket(self):
        # Prometheus buckets are "le": an observation equal to a bound
        # counts in that bound's bucket.
        h = Histogram("demo_seconds", buckets=(1.0, 5.0))
        h.observe(1.0)
        assert h.cumulative_buckets()[0] == (1.0, 1)

    def test_empty_series_shape(self):
        h = Histogram("demo_seconds", buckets=(1.0,))
        assert h.count() == 0
        assert h.sum() == 0.0
        assert h.cumulative_buckets() == [(1.0, 0), (math.inf, 0)]

    def test_labelled_series(self):
        h = Histogram("demo_seconds", buckets=(1.0,))
        h.observe(0.5, detector="lof")
        h.observe(2.0, detector="lof")
        h.observe(0.1, detector="iforest")
        assert h.count(detector="lof") == 2
        assert h.count(detector="iforest") == 1
        assert h.count() == 0

    def test_default_buckets_strictly_increasing(self):
        assert all(
            b2 > b1 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValidationError):
            Histogram("demo_seconds", buckets=())
        with pytest.raises(ValidationError):
            Histogram("demo_seconds", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("demo_total")
        b = registry.counter("demo_total")
        assert a is b
        assert len(registry) == 1

    def test_type_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("demo")
        with pytest.raises(ValidationError):
            registry.gauge("demo")
        with pytest.raises(ValidationError):
            registry.histogram("demo")

    def test_collect_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("zzz_total")
        registry.gauge("aaa_gauge")
        assert [m.name for m in registry.collect()] == ["aaa_gauge", "zzz_total"]

    def test_get(self):
        registry = MetricsRegistry()
        c = registry.counter("demo_total")
        assert registry.get("demo_total") is c
        assert registry.get("missing") is None

    def test_reset_keeps_registrations(self):
        registry = MetricsRegistry()
        c = registry.counter("demo_total")
        c.inc(4)
        registry.reset()
        assert registry.counter("demo_total") is c
        assert c.value() == 0.0
        c.inc()
        assert c.value() == 1.0


class TestDefaultRegistry:
    def test_module_factories_use_global_registry(self):
        c = obs_metrics.counter("repro_test_obs_demo_total")
        assert obs_metrics.get_registry().get("repro_test_obs_demo_total") is c

    def test_global_reset_zeroes_values(self):
        c = obs_metrics.counter("repro_test_obs_demo_total")
        c.inc(9)
        obs_metrics.reset()
        assert c.value() == 0.0

    def test_library_metrics_preregistered(self):
        # importing the instrumented layers registers their metrics
        import repro.pipeline  # noqa: F401
        import repro.subspaces.scorer  # noqa: F401

        names = {m.name for m in obs_metrics.get_registry().collect()}
        assert "repro_scorer_cache_hits_total" in names
        assert "repro_scorer_cache_misses_total" in names
        assert "repro_pipeline_cell_seconds" in names
