"""Unit tests for repro.obs.prof (resource probes and the stack sampler)."""

import threading
import time
import tracemalloc

import pytest

from repro.obs.prof import (
    NULL_PROBE,
    PROF_ENV,
    NullProbe,
    ResourceProbe,
    SamplingProfiler,
    alloc_tracking_enabled,
    profiling_enabled,
    resource_probe,
)


class TestEnablement:
    @pytest.mark.parametrize("value", ["", "0", "false", "off", "no", "  OFF "])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(PROF_ENV, value)
        assert not profiling_enabled()

    def test_unset_is_disabled(self, monkeypatch):
        monkeypatch.delenv(PROF_ENV, raising=False)
        assert not profiling_enabled()
        assert not alloc_tracking_enabled()

    @pytest.mark.parametrize("value", ["1", "on", "alloc", "yes"])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv(PROF_ENV, value)
        assert profiling_enabled()

    def test_alloc_mode_needs_the_alloc_value(self, monkeypatch):
        monkeypatch.setenv(PROF_ENV, "1")
        assert not alloc_tracking_enabled()
        monkeypatch.setenv(PROF_ENV, "alloc")
        assert alloc_tracking_enabled()


class TestFactory:
    def test_off_returns_the_shared_null_probe(self, monkeypatch):
        monkeypatch.delenv(PROF_ENV, raising=False)
        probe = resource_probe()
        assert probe is NULL_PROBE
        assert isinstance(probe, NullProbe)
        assert not probe.enabled

    def test_on_returns_a_live_probe(self, monkeypatch):
        monkeypatch.setenv(PROF_ENV, "1")
        probe = resource_probe()
        assert isinstance(probe, ResourceProbe)
        assert probe.enabled

    def test_alloc_mode_propagates(self, monkeypatch):
        monkeypatch.setenv(PROF_ENV, "alloc")
        with resource_probe() as probe:
            pass
        assert "alloc_net_bytes" in probe.readings()


class TestNullProbe:
    def test_context_manager_is_a_no_op(self):
        with NULL_PROBE as probe:
            assert probe is NULL_PROBE
        assert NULL_PROBE.cpu_seconds == 0.0
        assert NULL_PROBE.peak_rss_bytes == 0

    def test_readings_contribute_nothing(self):
        assert NULL_PROBE.readings() == {}


class TestResourceProbe:
    def test_measures_cpu_and_rss(self):
        with ResourceProbe() as probe:
            # Enough arithmetic to register on process_time.
            total = 0
            for i in range(200_000):
                total += i * i
        assert probe.cpu_seconds > 0.0
        assert probe.peak_rss_bytes > 0
        assert sorted(probe.readings()) == ["cpu_seconds", "peak_rss_bytes"]

    def test_alloc_mode_reports_heap_deltas(self):
        with ResourceProbe(alloc=True) as probe:
            block = [0] * 200_000
            del block
        readings = probe.readings()
        assert readings["alloc_peak_bytes"] > 0
        assert set(readings) == {
            "cpu_seconds",
            "peak_rss_bytes",
            "alloc_net_bytes",
            "alloc_peak_bytes",
        }

    def test_alloc_probe_owns_tracemalloc_when_it_started_it(self):
        assert not tracemalloc.is_tracing()
        with ResourceProbe(alloc=True):
            assert tracemalloc.is_tracing()
        assert not tracemalloc.is_tracing()

    def test_alloc_probe_leaves_running_tracemalloc_alone(self):
        tracemalloc.start()
        try:
            with ResourceProbe(alloc=True):
                pass
            assert tracemalloc.is_tracing()
        finally:
            tracemalloc.stop()


class TestSamplingProfiler:
    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)

    def test_samples_a_busy_main_thread(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            deadline = time.monotonic() + 0.2
            while time.monotonic() < deadline:
                sum(i * i for i in range(1000))
        assert profiler.sample_count > 0
        text = profiler.collapsed()
        assert text
        for line in text.strip().splitlines():
            stack, _, count = line.rpartition(" ")
            assert stack  # at least one frame
            assert int(count) >= 1
            assert all(frame for frame in stack.split(";"))

    def test_excludes_its_own_thread(self):
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            time.sleep(0.05)
        assert all(
            "prof:_run" not in ";".join(stack)
            for stack in profiler._stacks
        )

    def test_start_stop_idempotent(self):
        profiler = SamplingProfiler(interval_s=0.001)
        profiler.start()
        profiler.start()
        n_threads = sum(
            1
            for t in threading.enumerate()
            if t.name == "repro-prof-sampler"
        )
        assert n_threads == 1
        profiler.stop()
        profiler.stop()

    def test_write_collapsed_stacks(self, tmp_path):
        profiler = SamplingProfiler(interval_s=0.001)
        with profiler:
            deadline = time.monotonic() + 0.05
            while time.monotonic() < deadline:
                sum(range(1000))
        path = tmp_path / "out" / "profile.collapsed"
        profiler.write(str(path))
        assert path.read_text() == profiler.collapsed()
