"""Unit tests for repro.obs.snapshot.run_snapshot."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.snapshot import run_snapshot

SECTIONS = (
    "caches",
    "distance",
    "hics_contrast",
    "scorer",
    "grid",
    "shm",
    "ft",
    "engine",
    "serve",
    "cluster",
)


class TestEmptyRegistry:
    def test_all_sections_present(self):
        snapshot = run_snapshot(MetricsRegistry())
        assert tuple(snapshot) == SECTIONS

    def test_absent_instruments_report_zeros(self):
        snapshot = run_snapshot(MetricsRegistry())
        assert snapshot["caches"] == {}
        assert snapshot["distance"]["hits"] == 0.0
        assert snapshot["distance"]["hit_rate"] == 0.0
        assert snapshot["scorer"]["subspaces_scored"] == 0.0
        assert snapshot["engine"]["pool_entries"] == 0.0
        assert snapshot["engine"]["hit_rate"] == 0.0
        assert snapshot["serve"]["requests"] == {}
        assert snapshot["serve"]["request_count"] == 0
        assert snapshot["serve"]["mean_batch_size"] == 0.0


class TestPopulatedRegistry:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("repro_cache_hits_total").inc(8, cache="scorer")
        reg.counter("repro_cache_misses_total").inc(2, cache="scorer")
        reg.counter("repro_cache_evictions_total").inc(1, cache="scorer")
        reg.counter("repro_cache_misses_total").inc(5, cache="dist")
        reg.counter("repro_grid_cells_total").inc(12)
        reg.counter("repro_grid_cells_skipped_total").inc(3)
        reg.counter("repro_exec_steals_total").inc(2, backend="thread")
        reg.gauge("repro_shm_segments").set(3)
        reg.gauge("repro_shm_bytes").set(1 << 20)
        reg.counter("repro_shm_publishes_total").inc(5, kind="data")
        reg.counter("repro_shm_publishes_total").inc(4, kind="block")
        reg.counter("repro_shm_attaches_total").inc(6, path="local")
        reg.counter("repro_shm_attaches_total").inc(2, path="segment")
        reg.counter("repro_shm_attach_failures_total").inc(1)
        reg.counter("repro_shm_unlinks_total").inc(3)
        reg.gauge("repro_engine_pool_entries").set(2)
        reg.gauge("repro_engine_pool_bytes").set(4096)
        reg.counter("repro_engine_pool_hits_total").inc(6)
        reg.counter("repro_engine_pool_misses_total").inc(2)
        reg.counter("repro_engine_pool_evictions_total").inc(1)
        reg.counter("repro_engine_coalesced_requests_total").inc(4)
        reg.counter("repro_serve_requests_total").inc(9, status="ok")
        reg.counter("repro_serve_requests_total").inc(1, status="error")
        hist = reg.histogram("repro_serve_request_seconds")
        for value in (0.01, 0.02, 0.03):
            hist.observe(value)
        batches = reg.histogram("repro_serve_batch_size", buckets=(1, 2, 4))
        batches.observe(1)
        batches.observe(3)
        reg.gauge("repro_serve_queue_depth").set(5)
        return reg

    def test_named_cache_section(self):
        snapshot = run_snapshot(self._registry())
        assert set(snapshot["caches"]) == {"scorer", "dist"}
        scorer = snapshot["caches"]["scorer"]
        assert scorer["hits"] == 8.0
        assert scorer["misses"] == 2.0
        assert scorer["evictions"] == 1.0
        assert scorer["hit_rate"] == 0.8
        # A cache seen only through misses still gets a full entry.
        assert snapshot["caches"]["dist"]["hits"] == 0.0
        assert snapshot["caches"]["dist"]["hit_rate"] == 0.0

    def test_grid_section(self):
        snapshot = run_snapshot(self._registry())
        assert snapshot["grid"] == {
            "cells_total": 12.0,
            "cells_skipped": 3.0,
            "steals": 2.0,
        }

    def test_shm_section(self):
        snapshot = run_snapshot(self._registry())
        assert snapshot["shm"] == {
            "segments": 3.0,
            "bytes": float(1 << 20),
            "publishes": 9.0,
            "attaches": 8.0,
            "segment_attaches": 2.0,
            "attach_failures": 1.0,
            "unlinks": 3.0,
        }

    def test_engine_section(self):
        engine = run_snapshot(self._registry())["engine"]
        assert engine["pool_entries"] == 2.0
        assert engine["pool_bytes"] == 4096.0
        assert engine["pool_hits"] == 6.0
        assert engine["pool_misses"] == 2.0
        assert engine["evictions"] == 1.0
        assert engine["coalesced_requests"] == 4.0
        assert engine["hit_rate"] == 0.75

    def test_serve_section(self):
        serve = run_snapshot(self._registry())["serve"]
        assert serve["requests"] == {"error": 1.0, "ok": 9.0}
        assert serve["request_count"] == 3
        assert serve["request_seconds"] == pytest.approx(0.06)
        assert serve["batches"] == 2
        assert serve["mean_batch_size"] == 2.0
        assert serve["queue_depth"] == 5.0

    def test_round_trips_through_json(self):
        snapshot = run_snapshot(self._registry())
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_reading_is_non_destructive(self):
        reg = self._registry()
        first = run_snapshot(reg)
        second = run_snapshot(reg)
        assert first == second


class TestPerWorkerLabelMerge:
    """Cluster runs merge per-worker metric dumps into one registry: the
    same series appears once per worker with an extra ``worker`` label.
    Group-summing must roll those up; exact label lookup would miss them.
    """

    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("repro_serve_requests_total").inc(4, status="ok", worker="0")
        reg.counter("repro_serve_requests_total").inc(3, status="ok", worker="1")
        reg.counter("repro_serve_requests_total").inc(1, status="error", worker="1")
        reg.counter("repro_cache_hits_total").inc(5, cache="scorer", worker="0")
        reg.counter("repro_cache_hits_total").inc(7, cache="scorer", worker="1")
        reg.counter("repro_cache_misses_total").inc(3, cache="scorer", worker="0")
        reg.counter("repro_cluster_routed_total").inc(6, slot="0")
        reg.counter("repro_cluster_routed_total").inc(2, slot="1")
        reg.counter("repro_cluster_worker_restarts_total").inc(1, slot="0")
        reg.gauge("repro_cluster_workers").set(2)
        return reg

    def test_requests_sum_across_worker_labels(self):
        serve = run_snapshot(self._registry())["serve"]
        assert serve["requests"] == {"error": 1.0, "ok": 7.0}

    def test_named_caches_sum_across_worker_labels(self):
        scorer = run_snapshot(self._registry())["caches"]["scorer"]
        assert scorer["hits"] == 12.0
        assert scorer["misses"] == 3.0
        assert scorer["hit_rate"] == 0.8

    def test_cluster_section_sums_slots(self):
        cluster = run_snapshot(self._registry())["cluster"]
        assert cluster["routed"] == 8.0
        assert cluster["worker_restarts"] == 1.0
        assert cluster["workers_live"] == 2.0
        assert cluster["unavailable"] == 0.0


class TestDefaultRegistry:
    def test_uses_process_global_registry_by_default(self):
        from repro.obs.metrics import counter, get_registry

        baseline = run_snapshot(get_registry())["ft"]["retries"]
        counter("repro_ft_retries_total").inc(2)
        assert run_snapshot()["ft"]["retries"] == baseline + 2
