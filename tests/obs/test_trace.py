"""Unit tests for repro.obs.trace."""

import threading

from repro.obs.trace import (
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)


def fake_clock(*readings):
    return iter(float(r) for r in readings).__next__


class TestSpan:
    def test_duration_open_span_is_zero(self):
        record = Span(name="open", span_id=1, parent_id=None, start_s=5.0)
        assert record.end_s is None
        assert record.duration_s == 0.0

    def test_duration_closed(self):
        record = Span(name="x", span_id=1, parent_id=None, start_s=1.0, end_s=3.5)
        assert record.duration_s == 2.5

    def test_set_returns_self_and_merges(self):
        record = Span(name="x", span_id=1, parent_id=None, attributes={"a": 1})
        assert record.set(b=2) is record
        assert record.attributes == {"a": 1, "b": 2}

    def test_as_dict_shape(self):
        record = Span(
            name="x", span_id=3, parent_id=2, start_s=0.0, end_s=1.0,
            attributes={"k": "v"},
        )
        assert record.as_dict() == {
            "name": "x",
            "span_id": 3,
            "parent_id": 2,
            "start_s": 0.0,
            "duration_s": 1.0,
            "attributes": {"k": "v"},
        }


class TestTracer:
    def test_completion_order_and_durations(self):
        tracer = Tracer(clock=fake_clock(0.0, 1.0, 3.0, 6.0))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]
        assert tracer.spans[0].duration_s == 2.0
        assert tracer.spans[1].duration_s == 6.0

    def test_parent_linkage(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["a"].parent_id is None
        assert by_name["b"].parent_id == by_name["a"].span_id
        assert by_name["c"].parent_id == by_name["b"].span_id
        assert by_name["d"].parent_id == by_name["a"].span_id

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert len(tracer.roots()) == 2
        assert all(s.parent_id is None for s in tracer.spans)

    def test_span_ids_unique(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("x"):
                pass
        ids = [s.span_id for s in tracer.spans]
        assert len(set(ids)) == 5

    def test_attributes_and_set_during_span(self):
        tracer = Tracer()
        with tracer.span("cell", dataset="hics_14") as record:
            record.set(n_scored=17)
        assert tracer.spans[0].attributes == {"dataset": "hics_14", "n_scored": 17}

    def test_exception_still_closes_span(self):
        tracer = Tracer(clock=fake_clock(0.0, 1.0, 2.0, 3.0))
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert len(tracer.spans) == 1
        assert tracer.spans[0].duration_s == 1.0
        # the active-span stack unwound: the next span is a root
        with tracer.span("after"):
            pass
        assert tracer.spans[-1].parent_id is None

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert len(tracer) == 0

    def test_children_of_and_total_seconds(self):
        tracer = Tracer(clock=fake_clock(0.0, 1.0, 2.0, 3.0, 4.0, 10.0))
        with tracer.span("parent"):
            with tracer.span("leaf"):
                pass
            with tracer.span("leaf"):
                pass
        (parent,) = tracer.roots()
        assert [s.name for s in tracer.children_of(parent)] == ["leaf", "leaf"]
        assert tracer.total_seconds("leaf") == 2.0
        assert tracer.total_seconds("parent") == 10.0
        assert tracer.total_seconds("missing") == 0.0


class TestActiveTracer:
    def test_default_is_null(self):
        tracer = get_tracer()
        assert isinstance(tracer, NullTracer)
        assert not tracer.enabled
        assert tracer.spans == ()

    def test_module_span_is_noop_by_default(self):
        with span("anything", k=1) as record:
            # shared no-op span: set() is accepted and discarded
            assert record.set(extra=2) is record

    def test_use_tracer_routes_module_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("outer"):
                with span("inner"):
                    pass
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_use_tracer_restores_previous(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
        assert isinstance(get_tracer(), NullTracer)

    def test_set_tracer_none_restores_null(self):
        tracer = Tracer()
        set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(None)
        assert isinstance(get_tracer(), NullTracer)

    def test_nesting_is_per_thread(self):
        tracer = Tracer()
        seen = {}

        def worker():
            # a fresh thread starts with no active span: its span is a root
            with use_tracer(tracer):
                with tracer.span("thread_root") as record:
                    seen["parent_id"] = record.parent_id

        with use_tracer(tracer):
            with tracer.span("main_root"):
                thread = threading.Thread(target=worker)
                thread.start()
                thread.join()
        assert seen["parent_id"] is None


class TestNullTracer:
    def test_span_is_shared_instance(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b", k=1)

    def test_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("x"):
            pass
        assert tracer.spans == ()
