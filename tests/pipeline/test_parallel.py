"""Tests for backend-parallel grid execution."""

import pytest

from repro.detectors import LOF, KNNDetector
from repro.exceptions import ExperimentError
from repro.exec import SerialBackend, ThreadBackend
from repro.explainers import Beam, LookOut
from repro.pipeline import run_grid_parallel


FACTORIES = [lambda: Beam(beam_width=8, result_size=8), lambda: LookOut(budget=8)]


def selector(dataset, dimensionality):
    return dataset.ground_truth.points_at(dimensionality)[:2]


class Exploding(Beam):
    """Module-level so instances can cross the process boundary."""

    def explain(self, *args, **kwargs):
        raise RuntimeError("boom")


class TestParallelGrid:
    def test_matches_serial_results(self, hics_small):
        serial, _, _, _ = run_grid_parallel(
            [hics_small],
            [LOF(k=15), KNNDetector(k=10)],
            FACTORIES,
            [2],
            n_jobs=1,
            points_selector=selector,
        )
        parallel, _, _, _ = run_grid_parallel(
            [hics_small],
            [LOF(k=15), KNNDetector(k=10)],
            FACTORIES,
            [2],
            n_jobs=2,
            points_selector=selector,
        )
        key = lambda r: (r.dataset, r.detector, r.explainer, r.dimensionality)
        serial_rows = sorted(
            ((key(r), r.map, r.mean_recall) for r in serial)
        )
        parallel_rows = sorted(
            ((key(r), r.map, r.mean_recall) for r in parallel)
        )
        assert serial_rows == parallel_rows
        assert len(serial_rows) == 4

    def test_deterministic_result_order(self, hics_small):
        serial, _, _, _ = run_grid_parallel(
            [hics_small],
            [LOF(k=15), KNNDetector(k=10)],
            FACTORIES,
            [2],
            n_jobs=1,
            points_selector=selector,
        )
        parallel, _, _, _ = run_grid_parallel(
            [hics_small],
            [LOF(k=15), KNNDetector(k=10)],
            FACTORIES,
            [2],
            n_jobs=2,
            backend="thread",
            points_selector=selector,
        )
        key = lambda r: (r.dataset, r.detector, r.explainer, r.dimensionality)
        # map_ordered reorders completion-order results, so the parallel
        # table preserves group submission order — not merely the same set.
        assert [key(r) for r in serial] == [key(r) for r in parallel]

    def test_accepts_backend_instance(self, hics_small):
        with ThreadBackend(n_jobs=2) as backend:
            table, skipped, undefined, failed = run_grid_parallel(
                [hics_small],
                [LOF(k=15)],
                [lambda: Beam(beam_width=5)],
                [2],
                n_jobs=2,
                backend=backend,
                points_selector=selector,
            )
            assert len(table) == 1
            assert skipped == [] and undefined == []
            # The caller-owned pool must survive the run.
            assert backend.map_ordered(len, [(1, 2), ()]) == [2, 0]

    def test_backend_n_jobs_conflict_rejected(self, hics_small):
        with pytest.raises(Exception, match="n_jobs"):
            run_grid_parallel(
                [hics_small],
                [LOF(k=15)],
                [lambda: Beam(beam_width=5)],
                [2],
                n_jobs=3,
                backend=SerialBackend(),
                points_selector=selector,
            )

    def test_undefined_dimensionalities_recorded(self, hics_small):
        table, skipped, undefined, failed = run_grid_parallel(
            [hics_small],
            [LOF(k=15)],
            [lambda: Beam(beam_width=5)],
            [2, 9],
            n_jobs=2,
            points_selector=selector,
        )
        assert len(table) == 1
        assert skipped == []
        assert undefined == [
            (hics_small.name, 9, "undefined_dimensionality")
        ]

    def test_empty_selection_recorded(self, hics_small):
        def empty_selector(dataset, dimensionality):
            return ()

        table, skipped, undefined, failed = run_grid_parallel(
            [hics_small],
            [LOF(k=15)],
            [lambda: Beam(beam_width=5)],
            [2],
            n_jobs=2,
            points_selector=empty_selector,
        )
        assert len(table) == 0
        assert skipped == []
        assert undefined == [(hics_small.name, 2, "empty_selection")]

    def test_errors_collected_not_raised(self, hics_small):
        table, skipped, _, failed = run_grid_parallel(
            [hics_small],
            [LOF(k=15)],
            [lambda: Exploding(beam_width=5)],
            [2],
            n_jobs=2,
            points_selector=selector,
        )
        assert len(table) == 0
        assert len(skipped) == 1
        assert "boom" in skipped[0][-1]

    def test_errors_raise_when_requested(self, hics_small):
        with pytest.raises(RuntimeError):
            run_grid_parallel(
                [hics_small],
                [LOF(k=15)],
                [lambda: Exploding(beam_width=5)],
                [2],
                n_jobs=1,
                points_selector=selector,
                skip_errors=False,
            )

    def test_validates_inputs(self, hics_small):
        with pytest.raises(ExperimentError):
            run_grid_parallel([], [LOF()], FACTORIES, [2])
        with pytest.raises(ExperimentError):
            run_grid_parallel(
                [hics_small], [LOF()], FACTORIES, [2], n_jobs=0
            )
