"""Tests for process-parallel grid execution."""

import pytest

from repro.detectors import LOF, KNNDetector
from repro.exceptions import ExperimentError
from repro.explainers import Beam, LookOut
from repro.pipeline import run_grid_parallel


FACTORIES = [lambda: Beam(beam_width=8, result_size=8), lambda: LookOut(budget=8)]


def selector(dataset, dimensionality):
    return dataset.ground_truth.points_at(dimensionality)[:2]


class Exploding(Beam):
    """Module-level so instances can cross the process boundary."""

    def explain(self, *args, **kwargs):
        raise RuntimeError("boom")


class TestParallelGrid:
    def test_matches_serial_results(self, hics_small):
        serial, _ = run_grid_parallel(
            [hics_small],
            [LOF(k=15), KNNDetector(k=10)],
            FACTORIES,
            [2],
            n_jobs=1,
            points_selector=selector,
        )
        parallel, _ = run_grid_parallel(
            [hics_small],
            [LOF(k=15), KNNDetector(k=10)],
            FACTORIES,
            [2],
            n_jobs=2,
            points_selector=selector,
        )
        key = lambda r: (r.dataset, r.detector, r.explainer, r.dimensionality)
        serial_rows = sorted(
            ((key(r), r.map, r.mean_recall) for r in serial)
        )
        parallel_rows = sorted(
            ((key(r), r.map, r.mean_recall) for r in parallel)
        )
        assert serial_rows == parallel_rows
        assert len(serial_rows) == 4

    def test_undefined_dimensionalities_skipped(self, hics_small):
        table, skipped = run_grid_parallel(
            [hics_small],
            [LOF(k=15)],
            [lambda: Beam(beam_width=5)],
            [2, 9],
            n_jobs=2,
            points_selector=selector,
        )
        assert len(table) == 1
        assert skipped == []

    def test_errors_collected_not_raised(self, hics_small):
        table, skipped = run_grid_parallel(
            [hics_small],
            [LOF(k=15)],
            [lambda: Exploding(beam_width=5)],
            [2],
            n_jobs=2,
            points_selector=selector,
        )
        assert len(table) == 0
        assert len(skipped) == 1
        assert "boom" in skipped[0][-1]

    def test_errors_raise_when_requested(self, hics_small):
        with pytest.raises(RuntimeError):
            run_grid_parallel(
                [hics_small],
                [LOF(k=15)],
                [lambda: Exploding(beam_width=5)],
                [2],
                n_jobs=1,
                points_selector=selector,
                skip_errors=False,
            )

    def test_validates_inputs(self, hics_small):
        with pytest.raises(ExperimentError):
            run_grid_parallel([], [LOF()], FACTORIES, [2])
        with pytest.raises(ExperimentError):
            run_grid_parallel(
                [hics_small], [LOF()], FACTORIES, [2], n_jobs=0
            )
