"""Unit tests for ExplanationPipeline."""

import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.explainers import Beam, LookOut
from repro.pipeline import ExplanationPipeline


class TestPointPipeline:
    def test_run_on_synthetic(self, hics_small):
        pipeline = ExplanationPipeline(LOF(k=15), Beam(beam_width=15))
        result = pipeline.run(hics_small, 2, points=hics_small.outliers[:3])
        assert result.dataset == "hics_14"
        assert result.detector == "lof"
        assert result.explainer == "beam"
        assert 0.0 <= result.map <= 1.0
        assert result.seconds > 0.0
        assert result.n_subspaces_scored > 0
        assert result.explanations is not None
        assert result.summary is None

    def test_map_perfect_for_planted_2d(self, hics_small):
        # Beam+LOF at 2d on the small synthetic dataset is the paper's
        # easiest cell: MAP should be exactly 1.
        pipeline = ExplanationPipeline(LOF(k=15), Beam(beam_width=50))
        result = pipeline.run(hics_small, 2)
        assert result.map == 1.0

    def test_as_row(self, hics_small):
        pipeline = ExplanationPipeline(LOF(k=15), Beam(beam_width=10))
        row = pipeline.run(hics_small, 2, points=hics_small.outliers[:2]).as_row()
        assert row["pipeline"] == "beam+lof"
        assert set(row) >= {"dataset", "map", "seconds", "dimensionality"}

    def test_default_points_are_all_outliers(self, hics_small):
        pipeline = ExplanationPipeline(LOF(k=15), Beam(beam_width=10))
        result = pipeline.run(hics_small, 2)
        assert result.explanations is not None
        assert set(result.explanations) == set(hics_small.outliers)


class TestSummaryPipeline:
    def test_run_on_synthetic(self, hics_small):
        pipeline = ExplanationPipeline(LOF(k=15), LookOut(budget=20))
        result = pipeline.run(hics_small, 2, points=hics_small.outliers)
        assert result.summary is not None
        assert 0.0 <= result.map <= 1.0
        # Each point's view is the shared summary re-ranked by the point's
        # own standardised score (the testbed's evaluation semantics).
        assert result.explanations is not None
        for point, view in result.explanations.items():
            assert set(view.subspaces) <= set(result.summary.subspaces)
            assert list(view.scores) == sorted(view.scores, reverse=True)

    def test_name(self):
        pipeline = ExplanationPipeline(LOF(), LookOut())
        assert pipeline.name == "lookout+lof"


class TestScorerSharing:
    def test_shared_scorer_reuses_cache(self, hics_small):
        pipeline = ExplanationPipeline(LOF(k=15), Beam(beam_width=15))
        first = pipeline.run(hics_small, 2, points=hics_small.outliers[:2])
        second = pipeline.run(hics_small, 2, points=hics_small.outliers[:2])
        assert second.n_subspaces_scored == 0
        assert first.n_subspaces_scored > 0

    def test_cold_scorer_rescans(self, hics_small):
        pipeline = ExplanationPipeline(
            LOF(k=15), Beam(beam_width=15), share_scorer=False
        )
        first = pipeline.run(hics_small, 2, points=hics_small.outliers[:2])
        second = pipeline.run(hics_small, 2, points=hics_small.outliers[:2])
        assert second.n_subspaces_scored == first.n_subspaces_scored


class TestValidation:
    def test_rejects_non_detector(self):
        with pytest.raises(ValidationError):
            ExplanationPipeline("lof", Beam())

    def test_rejects_non_explainer(self):
        with pytest.raises(ValidationError):
            ExplanationPipeline(LOF(), "beam")

    def test_rejects_dimensionality_without_ground_truth(self, hics_small):
        pipeline = ExplanationPipeline(LOF(k=15), Beam(beam_width=5))
        with pytest.raises(ValidationError, match="no point at"):
            pipeline.run(hics_small, 9)


class TestScorerKeying:
    def test_scorer_keyed_by_fingerprint_not_id(self, hics_small):
        # Regression: scorers used to be keyed by id(dataset). CPython
        # reuses object ids after garbage collection, so a brand-new
        # dataset could silently alias the stale scorer (and its cached
        # score vectors) of a dead one. Fingerprints are content-based:
        # an equal reconstruction must map to the same scorer, a
        # different dataset with the same name must not.
        import dataclasses

        pipeline = ExplanationPipeline(LOF(k=15), Beam(beam_width=10))
        scorer = pipeline.scorer_for(hics_small)

        # An equal reconstruction: distinct object, identical content.
        rebuilt = dataclasses.replace(hics_small, X=hics_small.X.copy())
        assert rebuilt is not hics_small
        assert pipeline.scorer_for(rebuilt) is scorer

        shifted = dataclasses.replace(hics_small, X=hics_small.X + 1.0)
        assert shifted.name == hics_small.name
        assert pipeline.scorer_for(shifted) is not scorer

    def test_fingerprint_stable_and_content_sensitive(self, hics_small):
        import dataclasses

        assert hics_small.fingerprint == hics_small.fingerprint
        rebuilt = dataclasses.replace(hics_small, X=hics_small.X.copy())
        assert rebuilt.fingerprint == hics_small.fingerprint
        shifted = dataclasses.replace(hics_small, X=hics_small.X + 1.0)
        assert shifted.fingerprint != hics_small.fingerprint
