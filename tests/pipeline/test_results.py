"""Unit tests for ResultTable."""

import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.explainers import Beam
from repro.pipeline import ExplanationPipeline, ResultTable


@pytest.fixture(scope="module")
def sample_results(hics_small):
    pipeline = ExplanationPipeline(LOF(k=15), Beam(beam_width=10))
    table = ResultTable()
    for dim in (2, 3):
        points = hics_small.ground_truth.points_at(dim)[:2]
        table.add(pipeline.run(hics_small, dim, points=points))
    return table


class TestCollection:
    def test_len_and_iter(self, sample_results):
        assert len(sample_results) == 2
        assert len(list(sample_results)) == 2

    def test_add_rejects_non_result(self):
        with pytest.raises(ValidationError):
            ResultTable().add({"map": 1.0})

    def test_filter(self, sample_results):
        sub = sample_results.filter(dimensionality=2)
        assert len(sub) == 1
        assert sample_results.filter(detector="nope").rows() == []

    def test_values(self, sample_results):
        assert sample_results.values("dimensionality") == [2, 3]


class TestPivot:
    def test_grid_shape(self, sample_results):
        row_keys, col_keys, grid = sample_results.pivot(
            rows="dimensionality", cols="pipeline", value="map"
        )
        assert row_keys == [2, 3]
        assert col_keys == ["beam+lof"]
        assert len(grid) == 2 and len(grid[0]) == 1

    def test_missing_cells_none(self, sample_results):
        sub = sample_results.filter(dimensionality=2)
        _, _, grid = sub.pivot(rows="dimensionality", cols="pipeline", value="map")
        assert None not in grid[0]

    def test_aggregation_mean(self, sample_results):
        # Two rows share a cell when pivoting on a constant column.
        _, _, grid = sample_results.pivot(
            rows="dataset", cols="pipeline", value="dimensionality"
        )
        assert grid[0][0] == pytest.approx(2.5)

    def test_ascii_rendering(self, sample_results):
        text = sample_results.to_ascii(
            rows="dimensionality", cols="pipeline", value="map", title="T"
        )
        assert text.startswith("T")
        assert "beam+lof" in text


class TestCsv:
    def test_round_trip(self, sample_results, tmp_path):
        path = tmp_path / "results.csv"
        sample_results.write_csv(str(path))
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert "dataset" in lines[0]

    def test_empty_table(self):
        assert ResultTable().to_csv() == ""
