"""Unit tests for GridRunner."""

import pytest

from repro.detectors import LOF, KNNDetector
from repro.exceptions import ExperimentError
from repro.explainers import Beam, LookOut
from repro.pipeline import GridRunner


class TestGrid:
    def test_full_cross_product(self, hics_small):
        runner = GridRunner(
            [LOF(k=15), KNNDetector(k=10)],
            [lambda: Beam(beam_width=10), lambda: LookOut(budget=10)],
            points_selector=lambda ds, dim: ds.outliers[:2],
        )
        table = runner.run([hics_small], [2])
        assert len(table) == 4  # 2 detectors x 2 explainers x 1 dim
        assert {r.as_row()["pipeline"] for r in table} == {
            "beam+lof",
            "beam+knn",
            "lookout+lof",
            "lookout+knn",
        }

    def test_undefined_dimensionality_skipped(self, hics_small):
        runner = GridRunner(
            [LOF(k=15)],
            [lambda: Beam(beam_width=5)],
            points_selector=lambda ds, dim: ds.outliers[:1],
        )
        table = runner.run([hics_small], [2, 9])
        assert len(table) == 1

    def test_undefined_dimensionality_recorded(self, hics_small):
        runner = GridRunner(
            [LOF(k=15)],
            [lambda: Beam(beam_width=5)],
            points_selector=lambda ds, dim: ds.outliers[:1],
        )
        runner.run([hics_small], [2, 9])
        assert runner.skipped_undefined == [
            (hics_small.name, 9, "undefined_dimensionality")
        ]

    def test_empty_selection_recorded(self, hics_small):
        runner = GridRunner(
            [LOF(k=15)],
            [lambda: Beam(beam_width=5)],
            points_selector=lambda ds, dim: (),
        )
        table = runner.run([hics_small], [2])
        assert len(table) == 0
        assert runner.skipped_undefined == [
            (hics_small.name, 2, "empty_selection")
        ]

    def test_skipped_cells_counted_per_pipeline(self, hics_small):
        from repro.obs import metrics as obs_metrics

        skipped = obs_metrics.counter("repro_grid_cells_skipped_total")
        before = skipped.value(reason="undefined_dimensionality")
        runner = GridRunner(
            [LOF(k=15), KNNDetector(k=10)],
            [lambda: Beam(beam_width=5), lambda: LookOut(budget=5)],
            points_selector=lambda ds, dim: ds.outliers[:1],
        )
        runner.run([hics_small], [9])
        # one undefined slice hides all 4 pipeline cells
        assert skipped.value(reason="undefined_dimensionality") == before + 4

    def test_progress_hook(self, hics_small):
        seen = []
        runner = GridRunner(
            [LOF(k=15)],
            [lambda: Beam(beam_width=5)],
            on_result=seen.append,
            points_selector=lambda ds, dim: ds.outliers[:1],
        )
        runner.run([hics_small], [2])
        assert len(seen) == 1

    def test_skip_errors_records_reason(self, hics_small):
        class Exploding(Beam):
            def explain(self, *args, **kwargs):
                raise RuntimeError("boom")

        runner = GridRunner(
            [LOF(k=15)],
            [lambda: Exploding(beam_width=5)],
            skip_errors=True,
            points_selector=lambda ds, dim: ds.outliers[:1],
        )
        table = runner.run([hics_small], [2])
        assert len(table) == 0
        assert len(runner.skipped) == 1
        assert "boom" in runner.skipped[0][-1]

    def test_errors_propagate_by_default(self, hics_small):
        class Exploding(Beam):
            def explain(self, *args, **kwargs):
                raise RuntimeError("boom")

        runner = GridRunner(
            [LOF(k=15)],
            [lambda: Exploding(beam_width=5)],
            points_selector=lambda ds, dim: ds.outliers[:1],
        )
        with pytest.raises(RuntimeError):
            runner.run([hics_small], [2])

    def test_requires_components(self):
        with pytest.raises(ExperimentError):
            GridRunner([], [lambda: Beam()])
        with pytest.raises(ExperimentError):
            GridRunner([LOF()], [])

    def test_pipelines_property(self, hics_small):
        runner = GridRunner([LOF(k=15)], [lambda: Beam(beam_width=5)])
        assert len(runner.pipelines) == 1
        assert runner.pipelines[0].name == "beam+lof"
