"""Sharded grid dispatch: resolution, LPT partitioning, identity, resume."""

import pytest

from repro.detectors import LOF, KNNDetector
from repro.exceptions import ExperimentError
from repro.explainers import Beam, LookOut
from repro.ft import CheckpointJournal, FTConfig
from repro.pipeline.parallel import (
    GRID_SHARDS_ENV,
    _partition_shards,
    resolve_grid_shards,
    run_grid_parallel,
)

FACTORIES = [lambda: Beam(beam_width=8, result_size=8), lambda: LookOut(budget=8)]


def selector(dataset, dimensionality):
    return dataset.ground_truth.points_at(dimensionality)[:2]


def _keys(table):
    return [
        (r.dataset, r.detector, r.explainer, r.dimensionality, r.map,
         r.mean_recall)
        for r in table
    ]


class TestResolveGridShards:
    def test_explicit_values(self):
        assert resolve_grid_shards(0, n_jobs=4) == 0
        assert resolve_grid_shards(3, n_jobs=4) == 3
        assert resolve_grid_shards("auto", n_jobs=4) == 4

    @pytest.mark.parametrize("raw", ["", "0", "off", "no", "false"])
    def test_off_spellings(self, raw):
        assert resolve_grid_shards(raw, n_jobs=4) == 0

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(GRID_SHARDS_ENV, "auto")
        assert resolve_grid_shards(None, n_jobs=3) == 3
        monkeypatch.delenv(GRID_SHARDS_ENV)
        assert resolve_grid_shards(None, n_jobs=3) == 0

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(GRID_SHARDS_ENV, "7")
        assert resolve_grid_shards(2, n_jobs=4) == 2

    @pytest.mark.parametrize("raw", ["-1", -2, "many"])
    def test_garbage_rejected(self, raw):
        with pytest.raises(ExperimentError):
            resolve_grid_shards(raw, n_jobs=4)


class TestPartitionShards:
    def test_covers_every_index_once(self):
        members = _partition_shards([3, 1, 4, 1, 5, 9, 2], 3)
        flat = sorted(i for shard in members for i in shard)
        assert flat == list(range(7))

    def test_lpt_balances_loads(self):
        weights = [10, 9, 1, 1, 1]
        members = _partition_shards(weights, 2)
        loads = sorted(sum(weights[i] for i in shard) for shard in members)
        assert loads == [11, 11]  # LPT: 10+1 | 9+1+1

    def test_members_ascending_and_deterministic(self):
        first = _partition_shards([5, 1, 4, 2], 2)
        assert first == [[0, 1], [2, 3]]
        assert first == _partition_shards([5, 1, 4, 2], 2)

    def test_more_shards_than_groups_clamps(self):
        members = _partition_shards([1, 1], 8)
        assert len(members) == 2


class TestShardedGrid:
    def _run(self, dataset, **kwargs):
        return run_grid_parallel(
            [dataset],
            [LOF(k=15), KNNDetector(k=10)],
            FACTORIES,
            [2],
            points_selector=selector,
            **kwargs,
        )

    def test_sharded_matches_classic(self, hics_small):
        classic, _, _, _ = self._run(hics_small, n_jobs=1)
        sharded, _, _, _ = self._run(
            hics_small, n_jobs=2, backend="thread", shards="auto"
        )
        assert _keys(sharded) == _keys(classic)

    def test_single_shard_matches_classic(self, hics_small):
        classic, _, _, _ = self._run(hics_small, n_jobs=1)
        sharded, _, _, _ = self._run(
            hics_small, n_jobs=2, backend="thread", shards=1
        )
        assert _keys(sharded) == _keys(classic)

    def test_env_selects_sharding(self, hics_small, monkeypatch):
        classic, _, _, _ = self._run(hics_small, n_jobs=1)
        monkeypatch.setenv(GRID_SHARDS_ENV, "2")
        sharded, _, _, _ = self._run(hics_small, n_jobs=2, backend="thread")
        assert _keys(sharded) == _keys(classic)

    def test_process_backend_sharded_matches_classic(self, hics_small):
        classic, _, _, _ = self._run(hics_small, n_jobs=1)
        sharded, _, _, _ = self._run(
            hics_small, n_jobs=2, backend="process", shards="auto"
        )
        assert _keys(sharded) == _keys(classic)

    def test_sharded_run_journals_and_resumes(self, hics_small, tmp_path):
        path = str(tmp_path / "sharded.journal")
        reference, _, _, _ = self._run(hics_small, n_jobs=1)
        first, _, _, _ = self._run(
            hics_small, n_jobs=2, backend="thread", shards="auto",
            ft=FTConfig(checkpoint=path),
        )
        assert _keys(first) == _keys(reference)
        journaled = len(CheckpointJournal(path))
        assert journaled == len(reference)
        # Resume against the same journal: every cell replays, the table
        # is unchanged — a stolen shard is restartable like any other.
        resumed, _, _, _ = self._run(
            hics_small, n_jobs=2, backend="thread", shards="auto",
            ft=FTConfig(checkpoint=path),
        )
        assert _keys(resumed) == _keys(reference)
        assert len(CheckpointJournal(path)) == journaled
