"""Property-based tests (hypothesis) for detector invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.detectors import LOF, FastABOD, IsolationForest, KNNDetector

finite = st.floats(min_value=-100, max_value=100, allow_nan=False, allow_infinity=False)


def matrices(min_rows=5, max_rows=25, min_cols=1, max_cols=4):
    shapes = st.tuples(
        st.integers(min_rows, max_rows), st.integers(min_cols, max_cols)
    )
    return arrays(np.float64, shapes, elements=finite)


@settings(max_examples=25, deadline=None)
@given(X=matrices())
def test_lof_finite_and_shaped(X):
    scores = LOF(k=3).score(X)
    assert scores.shape == (X.shape[0],)
    assert np.isfinite(scores).all()


grid_points = st.lists(
    st.tuples(st.integers(-50, 50), st.integers(-50, 50)),
    min_size=5,
    max_size=25,
    unique=True,
)


@settings(max_examples=25, deadline=None)
@given(points=grid_points)
def test_lof_translation_invariant(points):
    # Grid data guarantees pairwise distances >= 0.5, so no points merge
    # under float rounding after the shift — the regime where LOF's
    # translation invariance is well defined.
    X = np.asarray(points, dtype=np.float64) * 0.5
    a = LOF(k=3).score(X)
    b = LOF(k=3).score(X + 17.0)
    assert np.allclose(a, b, atol=1e-6)


@settings(max_examples=25, deadline=None)
@given(X=matrices(min_rows=6), k=st.integers(2, 5))
def test_fast_abod_finite(X, k):
    scores = FastABOD(k=k).score(X)
    assert scores.shape == (X.shape[0],)
    assert np.isfinite(scores).all()


@settings(max_examples=15, deadline=None)
@given(X=matrices(min_rows=8), seed=st.integers(0, 10))
def test_iforest_scores_in_unit_interval(X, seed):
    scores = IsolationForest(n_trees=10, n_repeats=1, seed=seed).score(X)
    assert ((scores >= 0.0) & (scores <= 1.0)).all()


@settings(max_examples=15, deadline=None)
@given(X=matrices(min_rows=8), seed=st.integers(0, 10))
def test_iforest_deterministic(X, seed):
    det = IsolationForest(n_trees=8, n_repeats=1, seed=seed)
    assert np.allclose(det.score(X), det.score(X))


@settings(max_examples=25, deadline=None)
@given(X=matrices())
def test_knn_detector_nonnegative_and_scale_covariant(X):
    det = KNNDetector(k=3)
    scores = det.score(X)
    assert (scores >= 0.0).all()
    assert np.allclose(det.score(2.0 * X), 2.0 * scores, atol=1e-8)
