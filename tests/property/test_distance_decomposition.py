"""Property tests: decomposition-path scores match direct-path scores.

The distance substrate composes a subspace's squared distances from
float32 per-feature blocks, so its scores are not bit-identical to the
direct float64 projection path — but they must agree to tight tolerance
for every neighbourhood detector, across random subspaces, input dtypes,
and parent-reuse chains. (Bit-level *self*-consistency of the substrate is
covered in ``tests/neighbors/test_provider.py``.)
"""

import numpy as np
import pytest

from repro.detectors import LOF, FastABOD, KNNDetector
from repro.neighbors.distance import euclidean_cdist, euclidean_pdist_matrix
from repro.neighbors.provider import DistanceProvider
from repro.subspaces.scorer import SubspaceScorer

DETECTORS = [LOF(k=10), FastABOD(k=8), KNNDetector(k=5, aggregation="kth"),
             KNNDetector(k=5, aggregation="mean")]


def random_dataset(seed, n=120, d=10, dtype=np.float64):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    X[: n // 20] += rng.normal(scale=6.0, size=(n // 20, d))  # outliers
    return np.ascontiguousarray(X.astype(dtype))


@pytest.mark.parametrize("detector", DETECTORS, ids=lambda d: repr(d))
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_decomposition_matches_direct_path(detector, seed):
    X = random_dataset(seed)
    provider = DistanceProvider(X, max_bytes=1 << 25)
    rng = np.random.default_rng(seed + 100)
    for _ in range(8):
        dim = int(rng.integers(1, 6))
        sub = tuple(sorted(rng.choice(X.shape[1], size=dim, replace=False).tolist()))
        P = X[:, list(sub)]
        direct = detector.score(P)
        via = detector.score(P, sq_distances=provider.squared_distances(sub))
        np.testing.assert_allclose(via, direct, rtol=1e-4, atol=1e-6)


@pytest.mark.parametrize("detector", DETECTORS[:2], ids=lambda d: repr(d))
def test_parent_reuse_chain_matches_direct_path(detector):
    """Scores stay correct while a subspace grows one feature at a time."""
    X = random_dataset(7)
    provider = DistanceProvider(X, max_bytes=1 << 25)
    chain = (2, 4, 5, 7, 9)
    parent = None
    for end in range(1, len(chain) + 1):
        sub = chain[:end]
        sq = provider.squared_distances(sub, parent=parent)
        P = X[:, list(sub)]
        np.testing.assert_allclose(
            detector.score(P, sq_distances=sq),
            detector.score(P),
            rtol=1e-4,
            atol=1e-6,
        )
        parent = sub
    # Every growth step after the first extended the cached parent.
    assert provider.stats()["parent_reuses"] == len(chain) - 1


def test_scorer_provider_on_off_allclose():
    """SubspaceScorer results agree with the substrate on and off."""
    X = random_dataset(3)
    subs = [(0, 1), (0, 1, 2), (3, 7), (2, 4, 5, 7)]
    parents = [None, (0, 1), None, (2, 4, 5)]
    on = SubspaceScorer(
        X, LOF(k=10), distance_provider=DistanceProvider(X, max_bytes=1 << 25)
    )
    off = SubspaceScorer(X, LOF(k=10), distance_provider=False)
    for a, b in zip(on.scores_many(subs, parents=parents), off.scores_many(subs)):
        np.testing.assert_allclose(a, b, rtol=1e-4, atol=1e-6)
    stats = on.distance_stats
    assert stats is not None and stats["composed_misses"] == len(subs)
    assert off.distance_stats is None


class TestFloat32DistancePath:
    """Satellite: float32 input must not silently upcast to float64."""

    def test_cdist_preserves_float32(self):
        X = random_dataset(11, dtype=np.float32)
        D = euclidean_cdist(X, X)
        assert D.dtype == np.float32

    def test_pdist_preserves_float32(self):
        X = random_dataset(11, dtype=np.float32)
        D = euclidean_pdist_matrix(X)
        assert D.dtype == np.float32
        assert np.all(np.diag(D) == 0.0)
        np.testing.assert_array_equal(D, D.T)

    def test_float32_close_to_float64(self):
        X64 = random_dataset(13)
        X32 = X64.astype(np.float32)
        np.testing.assert_allclose(
            euclidean_pdist_matrix(X32),
            euclidean_pdist_matrix(X64),
            rtol=1e-4,
            atol=1e-4,
        )

    def test_mixed_dtypes_fall_back_to_float64(self):
        A = random_dataset(17, n=30)
        B = A.astype(np.float32)
        assert euclidean_cdist(A, B).dtype == np.float64

    def test_non_contiguous_float32_made_contiguous(self):
        X = np.asfortranarray(random_dataset(19, dtype=np.float32))
        D = euclidean_cdist(X, X)
        assert D.dtype == np.float32

    def test_detector_scores_on_float32_input(self):
        X64 = random_dataset(23, n=80, d=4)
        X32 = X64.astype(np.float32)
        for detector in DETECTORS:
            np.testing.assert_allclose(
                detector.score(X32), detector.score(X64), rtol=1e-3, atol=1e-4
            )
