"""Property-based tests (hypothesis) for explainer output invariants.

Uses the cheap KNN detector and small random datasets: the properties
under test (validity, determinism, ordering, budgets) are data-independent
contracts of the explainers, not effectiveness claims.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import KNNDetector
from repro.explainers import Beam, HiCS, LookOut, RefOut
from repro.subspaces import SubspaceScorer

datasets = st.tuples(
    st.integers(0, 1000),  # data seed
    st.integers(4, 7),  # n_features
    st.integers(25, 45),  # n_samples
)


def make_scorer(seed, d, n):
    X = np.random.default_rng(seed).normal(size=(n, d))
    return SubspaceScorer(X, KNNDetector(k=4))


@settings(max_examples=20, deadline=None)
@given(data=datasets, dim=st.integers(1, 3), point=st.integers(0, 24))
def test_beam_output_contract(data, dim, point):
    scorer = make_scorer(*data)
    result = Beam(beam_width=8, result_size=10).explain(scorer, point, dim)
    assert len(result) <= 10
    assert all(s.dimensionality == dim for s in result.subspaces)
    assert all(s[-1] < scorer.n_features for s in result.subspaces)
    assert len(set(result.subspaces)) == len(result.subspaces)
    assert list(result.scores) == sorted(result.scores, reverse=True)


@settings(max_examples=15, deadline=None)
@given(data=datasets, dim=st.integers(1, 3), seed=st.integers(0, 50))
def test_refout_deterministic_and_valid(data, dim, seed):
    scorer = make_scorer(*data)
    explainer = RefOut(pool_size=20, beam_width=8, result_size=8, seed=seed)
    a = explainer.explain(scorer, 0, dim)
    b = explainer.explain(scorer, 0, dim)
    assert a.subspaces == b.subspaces
    assert a.scores == b.scores
    assert all(s.dimensionality == dim for s in a.subspaces)


@settings(max_examples=15, deadline=None)
@given(data=datasets, budget=st.integers(1, 6))
def test_lookout_budget_and_monotone_gains(data, budget):
    scorer = make_scorer(*data)
    points = list(range(5))
    summary = LookOut(budget=budget).summarize(scorer, points, 2)
    assert 1 <= len(summary) <= budget
    assert len(set(summary.subspaces)) == len(summary.subspaces)
    gains = list(summary.scores)
    assert all(a >= b - 1e-9 for a, b in zip(gains, gains[1:]))
    assert all(g >= 0.0 for g in gains)


@settings(max_examples=10, deadline=None)
@given(data=datasets, seed=st.integers(0, 20))
def test_hics_contract(data, seed):
    scorer = make_scorer(*data)
    explainer = HiCS(
        mc_iterations=10, candidate_cutoff=8, result_size=6, seed=seed
    )
    summary = explainer.summarize(scorer, [0, 1], 2)
    assert 1 <= len(summary) <= 6
    assert all(s.dimensionality == 2 for s in summary.subspaces)
    # Contrast scores are averages of (1 - p-value) terms.
    assert all(0.0 <= c <= 1.0 for c in summary.scores)
    again = explainer.summarize(scorer, [0, 1], 2)
    assert summary.subspaces == again.subspaces
