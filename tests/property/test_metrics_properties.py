"""Property-based tests (hypothesis) for the ranking metrics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.ranking import (
    average_precision,
    precision,
    precision_at_k,
    recall,
)

# Subspaces as sorted tuples of small ints without duplicates.
subspace = st.frozensets(st.integers(0, 9), min_size=1, max_size=4).map(
    lambda s: tuple(sorted(s))
)
subspace_list = st.lists(subspace, max_size=12)
relevant_set = st.frozensets(subspace, min_size=1, max_size=5).map(list)


@given(retrieved=subspace_list, relevant=relevant_set)
def test_metrics_bounded(retrieved, relevant):
    for metric in (precision, recall, average_precision):
        value = metric(retrieved, relevant)
        assert 0.0 <= value <= 1.0


@given(retrieved=subspace_list, relevant=relevant_set)
def test_perfect_prefix_gives_ap_one(retrieved, relevant):
    ranking = list(relevant) + [s for s in retrieved if s not in set(relevant)]
    assert average_precision(ranking, relevant) == 1.0


@given(retrieved=subspace_list, relevant=relevant_set)
def test_recall_monotone_in_retrieved(retrieved, relevant):
    # Adding more results can never lower recall.
    for cut in range(len(retrieved) + 1):
        assert recall(retrieved[:cut], relevant) <= recall(retrieved, relevant)


@given(retrieved=subspace_list, relevant=relevant_set, k=st.integers(1, 15))
def test_precision_at_k_matches_prefix_precision(retrieved, relevant, k):
    head = retrieved[:k]
    assert precision_at_k(retrieved, relevant, k) == precision(head, relevant)


@given(relevant=relevant_set)
def test_empty_retrieval_scores_zero(relevant):
    assert precision([], relevant) == 0.0
    assert recall([], relevant) == 0.0
    assert average_precision([], relevant) == 0.0


@given(retrieved=subspace_list, relevant=relevant_set)
def test_ap_zero_iff_no_relevant_retrieved(retrieved, relevant):
    ap = average_precision(retrieved, relevant)
    hit = bool(set(retrieved) & set(relevant))
    assert (ap > 0.0) == hit


@given(retrieved=st.lists(subspace, min_size=2, max_size=10, unique=True),
       relevant=relevant_set)
def test_moving_relevant_earlier_never_hurts_ap(retrieved, relevant):
    relevant_positions = [
        i for i, s in enumerate(retrieved) if s in set(relevant)
    ]
    if not relevant_positions or relevant_positions[0] == 0:
        return
    i = relevant_positions[0]
    promoted = list(retrieved)
    promoted[i - 1], promoted[i] = promoted[i], promoted[i - 1]
    assert average_precision(promoted, relevant) >= average_precision(
        retrieved, relevant
    )
