"""Property-based tests: batched statistics kernels vs the scalar oracle.

The contract under fuzz: for *any* slice-membership pattern over *any*
marginal, the batched Welch and KS kernels reproduce the scalar kernels —
KS bit-for-bit, Welch to a tight relative tolerance (its slice moments
sum in a different order), and every degenerate branch (constant
samples, empty slices, tie runs) mapping to the exact same rule.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats import ks_statistic, welch_statistic, welch_t_test
from repro.stats.batch import (
    ks_p_values,
    ks_statistic_batch,
    masked_mean_var,
    student_t_sf_batch,
    tie_run_ends,
    welch_p_values,
    welch_statistic_batch,
)
from repro.stats.ks import ks_test
from repro.stats.special import student_t_sf

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def sample(min_size=2, max_size=40):
    return arrays(np.float64, st.integers(min_size, max_size), elements=finite_floats)


def tied_sample(min_size=4, max_size=40):
    """Float vectors drawn from a tiny integer alphabet: ties guaranteed."""
    return arrays(
        np.float64,
        st.integers(min_size, max_size),
        elements=st.integers(-3, 3).map(float),
    )


@st.composite
def marginal_with_memberships(draw, values=sample(min_size=4, max_size=50)):
    """A marginal vector plus a (B, n) slice-membership matrix."""
    marginal = draw(values)
    n = marginal.shape[0]
    n_slices = draw(st.integers(1, 6))
    membership = draw(
        arrays(np.bool_, st.tuples(st.just(n_slices), st.just(n)))
    )
    return marginal, membership


@given(case=marginal_with_memberships())
def test_ks_batched_bit_identical_to_scalar(case):
    marginal, membership = case
    order = np.argsort(marginal, kind="stable")
    statistic = ks_statistic_batch(
        membership[:, order], tie_run_ends(marginal[order])
    )
    for b in range(membership.shape[0]):
        sel = marginal[membership[b]]
        if sel.shape[0] == 0:
            assert statistic[b] == 1.0
        else:
            assert statistic[b] == ks_statistic(sel, marginal)


@given(case=marginal_with_memberships(values=tied_sample()))
def test_ks_batched_bit_identical_under_ties(case):
    marginal, membership = case
    order = np.argsort(marginal, kind="stable")
    statistic = ks_statistic_batch(
        membership[:, order], tie_run_ends(marginal[order])
    )
    for b in range(membership.shape[0]):
        sel = marginal[membership[b]]
        if sel.shape[0] >= 1:
            assert statistic[b] == ks_statistic(sel, marginal)


@given(case=marginal_with_memberships())
def test_ks_p_values_bit_identical_to_scalar(case):
    marginal, membership = case
    counts = membership.sum(axis=1)
    keep = counts >= 1
    if not keep.any():
        return
    membership = membership[keep]
    order = np.argsort(marginal, kind="stable")
    statistic = ks_statistic_batch(
        membership[:, order], tie_run_ends(marginal[order])
    )
    p = ks_p_values(statistic, membership.sum(axis=1), marginal.shape[0])
    for b in range(membership.shape[0]):
        ref = ks_test(marginal[membership[b]], marginal)
        assert statistic[b] == ref.statistic
        assert p[b] == ref.p_value


@given(case=marginal_with_memberships(values=sample(min_size=6, max_size=50)))
def test_welch_batched_matches_scalar_via_masked_moments(case):
    marginal, membership = case
    counts = membership.sum(axis=1)
    keep = counts >= 2
    if not keep.any():
        return
    membership = membership[keep]
    counts, means, variances = masked_mean_var(marginal, membership)
    statistic, df = welch_statistic_batch(
        means, variances, counts,
        float(np.mean(marginal)), float(np.var(marginal, ddof=1)),
        marginal.shape[0],
    )
    p = welch_p_values(statistic, df)
    # Numerically-constant samples sit in the catastrophic-cancellation
    # regime: a variance of ~1e-22 is pure rounding noise and the two
    # paths may land on different noise. The *exact* degenerate branches
    # (variance exactly zero) are covered by dedicated tests with
    # exactly-representable constants; here we fuzz the regular regime.
    scale = max(1.0, float(np.max(np.abs(marginal))))
    noise_floor = 1e-9 * scale * scale
    for b in range(membership.shape[0]):
        sel = marginal[membership[b]]
        scalar_var = float(np.var(sel, ddof=1))
        if 0.0 < min(scalar_var, float(variances[b])) < noise_floor or (
            (scalar_var == 0.0) != (float(variances[b]) == 0.0)
        ):
            continue
        # A constant slice is another cancellation regime: with both
        # variances exactly zero the nan-vs-±inf branch hinges on *exact*
        # mean equality, and the masked slice mean sums in a different
        # order than np.mean — a 1-ulp mean difference flips the branch.
        # Only mean gaps well clear of rounding noise pick a stable branch.
        if scalar_var == 0.0:
            mean_sel = float(np.mean(sel))
            mean_marg = float(np.mean(marginal))
            mean_scale = max(abs(mean_sel), abs(mean_marg))
            if abs(mean_sel - mean_marg) <= 16.0 * np.spacing(mean_scale):
                continue
        ref = welch_t_test(sel, marginal)
        if math.isnan(ref.statistic):
            assert math.isnan(statistic[b])
            assert p[b] == 1.0
        elif math.isinf(ref.statistic):
            assert statistic[b] == ref.statistic
            assert p[b] == 0.0
        else:
            # The masked moments sum in a different order than np.mean /
            # np.var over the extracted slice — agreement to a tight
            # relative tolerance, never a different branch.
            assert statistic[b] == ref.statistic or math.isclose(
                statistic[b], ref.statistic, rel_tol=1e-9, abs_tol=1e-12
            )
            assert math.isclose(df[b], ref.df, rel_tol=1e-9, abs_tol=1e-12)
            assert math.isclose(p[b], ref.p_value, rel_tol=1e-6, abs_tol=1e-9)


@given(a=sample(), b=sample())
def test_welch_batched_bit_identical_given_identical_summaries(a, b):
    # Fed the exact moments the scalar kernel computes internally, the
    # batched kernel must agree bit-for-bit, degenerate branches included.
    statistic, df = welch_statistic_batch(
        np.array([float(np.mean(a))]),
        np.array([float(np.var(a, ddof=1))]),
        np.array([a.shape[0]]),
        np.array([float(np.mean(b))]),
        np.array([float(np.var(b, ddof=1))]),
        np.array([b.shape[0]]),
    )
    ref_stat, ref_df = welch_statistic(a, b)
    if math.isnan(ref_stat):
        assert math.isnan(statistic[0])
    else:
        assert statistic[0] == ref_stat
    assert df[0] == ref_df


@given(value=finite_floats, n_a=st.integers(2, 30), n_b=st.integers(2, 30))
def test_welch_batched_constant_samples_degenerate_rules(value, n_a, n_b):
    statistic, df = welch_statistic_batch(
        np.array([value, value]),
        np.array([0.0, 0.0]),
        np.array([n_a, n_a]),
        np.array([value, value + 1.0]),
        np.array([0.0, 0.0]),
        np.array([n_b, n_b]),
    )
    assert math.isnan(statistic[0]) and df[0] == 1.0
    assert math.isinf(statistic[1]) and statistic[1] < 0 and df[1] == 1.0
    p = welch_p_values(statistic, df)
    assert p[0] == 1.0 and p[1] == 0.0


@settings(max_examples=50)
@given(
    t=arrays(np.float64, st.integers(1, 20),
             elements=st.floats(-50, 50, allow_nan=False)),
    df=st.floats(min_value=1.0, max_value=200.0),
)
def test_student_t_sf_batch_bit_identical(t, df):
    batched = student_t_sf_batch(t, np.full(t.shape, df))
    for i in range(t.shape[0]):
        assert batched[i] == student_t_sf(float(t[i]), df)


@given(case=marginal_with_memberships(values=sample(min_size=3, max_size=40)))
def test_masked_mean_var_matches_numpy(case):
    marginal, membership = case
    counts, means, variances = masked_mean_var(marginal, membership)
    for b in range(membership.shape[0]):
        sel = marginal[membership[b]]
        assert counts[b] == sel.shape[0]
        if sel.shape[0] >= 1:
            assert math.isclose(
                means[b], float(np.mean(sel)), rel_tol=1e-9, abs_tol=1e-9
            )
        if sel.shape[0] >= 2:
            assert math.isclose(
                variances[b], float(np.var(sel, ddof=1)),
                rel_tol=1e-8, abs_tol=1e-8,
            )
