"""Property-based tests (hypothesis) for the statistics substrate."""

import math

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.stats import ks_statistic, ks_test, welch_t_test, zscores

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def sample(min_size=2, max_size=40):
    return arrays(np.float64, st.integers(min_size, max_size), elements=finite_floats)


@given(a=sample(), b=sample())
def test_welch_pvalue_in_unit_interval(a, b):
    result = welch_t_test(a, b)
    assert 0.0 <= result.p_value <= 1.0


@given(a=sample(), b=sample())
def test_welch_antisymmetric(a, b):
    ab = welch_t_test(a, b)
    ba = welch_t_test(b, a)
    if math.isnan(ab.statistic):
        assert math.isnan(ba.statistic)
    else:
        assert ab.statistic == -ba.statistic or (
            math.isinf(ab.statistic) and math.isinf(ba.statistic)
        )
    assert ab.p_value == ba.p_value


@given(a=sample())
def test_welch_identical_samples_insignificant(a):
    result = welch_t_test(a, a)
    assert result.p_value > 0.99 or math.isnan(result.statistic)


@given(a=sample(), b=sample())
def test_ks_statistic_bounds_and_symmetry(a, b):
    d = ks_statistic(a, b)
    assert 0.0 <= d <= 1.0
    assert d == ks_statistic(b, a)


@given(a=sample())
def test_ks_identical_is_zero(a):
    assert ks_statistic(a, a) == 0.0


@given(a=sample(), b=sample())
def test_ks_triangle_like_monotonicity(a, b):
    # Shifting b far away drives the statistic to 1.
    far = b + 1e7
    assert ks_statistic(a, far) == 1.0


@given(x=sample(min_size=2, max_size=60))
def test_zscores_shape_and_moments(x):
    z = zscores(x)
    assert z.shape == x.shape
    if np.std(x) > 1e-9 * max(1.0, np.max(np.abs(x))):
        assert abs(z.mean()) < 1e-6
        assert abs(z.std() - 1.0) < 1e-6
    assert np.isfinite(z).all()


@given(x=sample(min_size=3, max_size=30), scale=st.floats(0.1, 100), shift=finite_floats)
def test_zscores_affine_invariant(x, scale, shift):
    assume(np.std(x) > 1e-6 * max(1.0, np.max(np.abs(x))))
    a = zscores(x)
    b = zscores(scale * x + shift)
    assert np.allclose(a, b, atol=1e-6)
