"""Property-based tests (hypothesis) for the subspace layer."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.subspaces import Subspace, all_subspaces, grow_by_one, top_k
from repro.subspaces.enumeration import count_subspaces, random_subspaces

feature_sets = st.frozensets(st.integers(0, 19), min_size=1, max_size=6)


@given(features=feature_sets)
def test_subspace_canonical_form(features):
    s = Subspace(features)
    assert tuple(s) == tuple(sorted(features))
    assert s == Subspace(reversed(sorted(features)))
    assert s.dimensionality == len(features)


@given(a=feature_sets, b=feature_sets)
def test_union_commutes_and_contains(a, b):
    sa, sb = Subspace(a), Subspace(b)
    union = sa.union(sb)
    assert union == sb.union(sa)
    assert union.contains(sa)
    assert union.contains(sb)
    assert union.dimensionality == len(a | b)


@given(d=st.integers(1, 9), m=st.integers(1, 4))
def test_all_subspaces_complete_and_unique(d, m):
    subs = list(all_subspaces(d, m))
    assert len(subs) == count_subspaces(d, m)
    assert len(set(subs)) == len(subs)
    assert all(s.dimensionality == m for s in subs)
    assert subs == sorted(subs)


@given(d=st.integers(2, 10), seeds=st.frozensets(st.integers(0, 9), min_size=1, max_size=4))
def test_grow_by_one_dimensionality(d, seeds):
    seed_subs = [Subspace([f]) for f in seeds if f < d]
    if not seed_subs:
        return
    grown = grow_by_one(seed_subs, d)
    assert all(g.dimensionality == 2 for g in grown)
    assert grown == sorted(set(grown))


@given(
    d=st.integers(3, 15),
    m=st.integers(1, 3),
    count=st.integers(1, 20),
    seed=st.integers(0, 100),
)
def test_random_subspaces_valid(d, m, count, seed):
    subs = random_subspaces(d, m, count, seed=seed)
    assert len(subs) == count
    for s in subs:
        assert s.dimensionality == m
        assert s[-1] < d


@given(
    scores=st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=1,
        max_size=20,
    ),
    k=st.integers(1, 25),
)
def test_top_k_is_sorted_prefix(scores, k):
    scored = [(Subspace([i]), float(v)) for i, v in enumerate(scores)]
    result = top_k(scored, k)
    assert len(result) == min(k, len(scored))
    values = [v for _, v in result]
    assert all(a >= b for a, b in zip(values, values[1:]))
    # The selected scores are the k largest overall.
    assert sorted(values, reverse=True) == sorted(
        sorted(scores, reverse=True)[: len(values)], reverse=True
    )
