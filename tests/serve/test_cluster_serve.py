"""End-to-end cluster drill: one acceptor, two spawned workers.

Boots a real two-worker cluster once (module scope — worker processes
are expensive to spawn) and walks the full serving story against it, in
order: liveness, routed explains, cross-process stats aggregation, hot
reload fan-out, snapshot fan-out, and finally the kill-one-worker drill
— the restarted worker must serve byte-identical responses restored
from its snapshot with zero detector evaluations (no cold recompute).

The later tests depend on state the earlier ones establish (the drill
kills the worker the explain tests warmed), so they run in file order.
"""

import json
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.cluster import ClusterConfig, ClusterServer
from repro.serve.ring import route_key

DATASETS = ("hics_14", "hics_23")
WORKERS = 2


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    snapshot_dir = tmp_path_factory.mktemp("cluster-snapshots")
    server = ClusterServer(
        ClusterConfig(
            workers=WORKERS,
            port=0,
            profile="smoke",
            snapshot_dir=str(snapshot_dir),
            warm=DATASETS,
            worker_wait_s=180.0,
        )
    )
    handle = server.run_in_thread()
    try:
        yield server, handle
    finally:
        handle.stop()


@pytest.fixture(scope="module")
def client(cluster):
    _, handle = cluster
    with ServeClient(handle.host, handle.port, timeout=300.0) as c:
        yield c


#: Baseline responses captured by the explain test; the kill drill
#: replays the same requests and compares against these wire payloads.
_BASELINE: dict[str, dict] = {}


def test_ping_round_trips_through_the_acceptor(client):
    assert client.ping() is True


def test_explains_route_to_distinct_owners(client):
    owners = {name: route_key(name, WORKERS) for name in DATASETS}
    # The two datasets land on different slots under the current ring —
    # the property the drill below relies on (one worker dies, the other
    # keeps serving). If the hash ever changes, fail loudly here.
    assert set(owners.values()) == {0, 1}
    for name in DATASETS:
        response = client.explain(name, "beam+lof", 2)
        assert response["ok"], response
        _BASELINE[name] = response["result"]


def test_stats_aggregates_across_worker_processes(client):
    stats = client.stats()
    assert stats["cluster"]["workers"] == WORKERS
    assert stats["cluster"]["live"] == WORKERS
    per_worker = stats["workers"]
    assert set(per_worker) == {str(slot) for slot in range(WORKERS)}
    # Each worker warmed its own shard: every worker holds warm state,
    # and no dataset's scorer is duplicated across workers.
    for slot in per_worker.values():
        assert slot["engine"]["entries"] >= 1


def test_reload_fans_out_to_every_worker(client):
    result = client.request({"op": "reload", "config": {"max_batch": 4}})
    assert result["ok"], result
    stats = client.stats()
    for slot in stats["workers"].values():
        assert slot["config"]["max_batch"] == 4


def test_snapshot_op_fans_out(client, cluster):
    server, _ = cluster
    result = client.request({"op": "snapshot"})
    assert result["ok"], result
    snapshot_dir = server.config.resolved_snapshot_dir()
    for slot in range(WORKERS):
        with open(f"{snapshot_dir}/worker-{slot}.json", encoding="utf-8") as fh:
            snapshot = json.load(fh)
        assert snapshot["kind"] == "engine_snapshot"


def test_kill_one_worker_drill(client, cluster):
    server, _ = cluster
    victim = route_key("hics_14", WORKERS)
    server.supervisor.workers[victim].process.kill()

    # The acceptor holds the request while the supervisor respawns the
    # owner (state affinity: no spill to the non-owner), then forwards.
    response = client.explain("hics_14", "beam+lof", 2)
    assert response["ok"], response
    assert json.dumps(response["result"], sort_keys=True) == json.dumps(
        _BASELINE["hics_14"], sort_keys=True
    )

    deadline = time.monotonic() + 60.0
    while True:
        stats = client.stats()
        if stats["cluster"]["live"] == WORKERS:
            break
        assert time.monotonic() < deadline, "worker never came back up"
        time.sleep(0.5)
    assert stats["cluster"]["restarts"] >= 1
    restarted = stats["workers"][str(victim)]
    # The respawned worker re-warmed from its snapshot, not by
    # recomputing: restored vectors present, zero detector evaluations.
    assert restarted["engine"]["restored_vectors"] > 0
    assert restarted["engine"]["n_evaluations"] == 0
    # Reload overrides survive the respawn.
    assert restarted["config"]["max_batch"] == 4

    # The surviving worker's dataset was never disturbed.
    response = client.explain("hics_23", "beam+lof", 2)
    assert response["ok"], response
    assert json.dumps(response["result"], sort_keys=True) == json.dumps(
        _BASELINE["hics_23"], sort_keys=True
    )
