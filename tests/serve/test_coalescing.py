"""The coalescing-correctness drill.

The serve layer's central promise: N concurrent requests coalesced into
one batch wave produce responses **byte-identical** (under the canonical
wire encoding) to N sequential one-shot
:class:`~repro.pipeline.ExplanationPipeline` runs. This suite asserts
that promise at two layers — :meth:`ExplainEngine.explain_many` directly,
and end-to-end through the server over sockets with coalescing forced —
across both the serial and the thread execution backends.
"""

import threading

import pytest

from repro.experiments.config import get_profile
from repro.pipeline.pipeline import ExplanationPipeline
from repro.serve.client import ServeClient
from repro.serve.engine import ExplainEngine
from repro.serve.protocol import (
    encode_line,
    resolve_dataset,
    resolve_pipeline,
    result_to_wire,
)
from repro.serve.server import ExplainServer, ServerConfig

PROFILE = get_profile("smoke")
BACKENDS = ("serial", "thread")


def one_shot_wire(dataset, pipeline_name: str, dimensionality: int,
                  points: tuple[int, ...]) -> bytes:
    """The canonical bytes of a fresh one-shot pipeline run."""
    detector, explainer = resolve_pipeline(pipeline_name, PROFILE)
    result = ExplanationPipeline(detector, explainer).run(
        dataset, dimensionality, points=points
    )
    return encode_line(result_to_wire(result))


def overlapping_sets(dataset, dimensionality: int = 2) -> list[tuple[int, ...]]:
    points = dataset.ground_truth.points_at(dimensionality)
    assert len(points) >= 2
    return [
        points,
        points[: max(1, len(points) // 2)],
        points[len(points) // 2 :] or points,
    ]


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", request.param)
    return request.param


class TestEngineCoalescing:
    @pytest.mark.parametrize("pipeline_name", ["beam+lof", "refout+lof"])
    def test_point_explainer_union_run_matches_one_shot(
        self, backend, pipeline_name
    ):
        dataset = resolve_dataset("hics_14", PROFILE)
        sets = overlapping_sets(dataset)
        engine = ExplainEngine()
        detector, explainer = resolve_pipeline(pipeline_name, PROFILE)
        results = engine.explain_many(dataset, detector, explainer, 2, sets)
        assert len(results) == len(sets)
        for points, result in zip(sets, results):
            assert encode_line(result_to_wire(result)) == one_shot_wire(
                dataset, pipeline_name, 2, points
            )

    def test_summary_explainer_runs_per_distinct_set(self, backend):
        dataset = resolve_dataset("hics_14", PROFILE)
        sets = overlapping_sets(dataset)
        engine = ExplainEngine()
        detector, explainer = resolve_pipeline("lookout+lof", PROFILE)
        results = engine.explain_many(dataset, detector, explainer, 2, sets)
        for points, result in zip(sets, results):
            assert result.summary is not None
            assert encode_line(result_to_wire(result)) == one_shot_wire(
                dataset, "lookout+lof", 2, points
            )

    def test_duplicate_sets_share_one_run(self):
        dataset = resolve_dataset("hics_14", PROFILE)
        points = dataset.ground_truth.points_at(2)
        engine = ExplainEngine()
        detector, explainer = resolve_pipeline("lookout+lof", PROFILE)
        results = engine.explain_many(
            dataset, detector, explainer, 2, [points, points, points]
        )
        assert results[0] is results[1] is results[2]

    def test_empty_batch_is_empty(self):
        dataset = resolve_dataset("hics_14", PROFILE)
        engine = ExplainEngine()
        detector, explainer = resolve_pipeline("beam+lof", PROFILE)
        assert engine.explain_many(dataset, detector, explainer, 2, []) == []


class TestServedCoalescing:
    def test_forced_coalesced_wave_matches_sequential_one_shots(self, backend):
        """N requests coalesced into ONE batch == N sequential runs, bytewise.

        Coalescing is forced, not hoped for: the engine is gated so the
        first (blocker) wave holds the dispatcher while the drill's
        requests pile into the queue; releasing the gate dispatches them
        all as a single wave.
        """
        dataset = resolve_dataset("hics_14", PROFILE)
        sets = overlapping_sets(dataset) * 2  # 6 requests, 3 distinct shapes
        server = ExplainServer(
            ServerConfig(port=0, profile="smoke", warm=("hics_14",),
                         max_queue=64)
        )
        original = server.engine.explain_many
        computing = threading.Event()
        release = threading.Event()

        def gated(*args, **kwargs):
            computing.set()
            assert release.wait(timeout=120)
            return original(*args, **kwargs)

        server.engine.explain_many = gated

        responses: list[dict | None] = [None] * len(sets)
        with server.run_in_thread() as handle:
            def fire(i: int) -> None:
                with ServeClient(handle.host, handle.port, timeout=300) as c:
                    responses[i] = c.explain(
                        "hics_14", "beam+lof", 2, points=list(sets[i])
                    )

            with ServeClient(handle.host, handle.port, timeout=300) as blocker:
                blocker_thread = threading.Thread(
                    target=lambda: blocker.explain(
                        "hics_14", "beam+lof", 2, points=list(sets[0])
                    )
                )
                blocker_thread.start()
                assert computing.wait(timeout=60)
                threads = [
                    threading.Thread(target=fire, args=(i,))
                    for i in range(len(sets))
                ]
                for thread in threads:
                    thread.start()
                with ServeClient(handle.host, handle.port) as probe:
                    import time

                    deadline = time.monotonic() + 60
                    while probe.stats()["queue_depth"] < len(sets):
                        assert time.monotonic() < deadline, "requests not queued"
                        time.sleep(0.01)
                release.set()
                for thread in threads:
                    thread.join()
                blocker_thread.join()

        assert all(r is not None and r["ok"] for r in responses)
        # All six shared one wave and one (dataset, pipeline, dim) group.
        assert {r["meta"]["coalesced"] for r in responses} == {len(sets)}
        for points, response in zip(sets, responses):
            served = encode_line(response["result"])
            assert served == one_shot_wire(dataset, "beam+lof", 2, points)
