"""Unit tests for repro.serve.engine (the warm scorer pool)."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.detectors import LOF, KNNDetector
from repro.exceptions import ValidationError
from repro.serve.engine import (
    DEFAULT_ENGINE_POOL_MB,
    ENGINE_POOL_MB_ENV,
    ExplainEngine,
    resolve_engine_pool_bytes,
)


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("hics_14")


def _matrix(seed: int, n: int = 40, d: int = 4) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(n, d))


class TestPooling:
    def test_same_dataset_and_detector_share_one_scorer(self, dataset):
        engine = ExplainEngine()
        a = engine.scorer_for(dataset, LOF(k=15))
        b = engine.scorer_for(dataset, LOF(k=15))
        assert a is b
        stats = engine.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_keyed_by_detector_parameters_not_identity(self, dataset):
        engine = ExplainEngine()
        warm = engine.scorer_for(dataset, LOF(k=15))
        assert engine.scorer_for(dataset, LOF(k=15)) is warm  # equal params
        assert engine.scorer_for(dataset, LOF(k=20)) is not warm
        assert engine.scorer_for(dataset, KNNDetector(k=15)) is not warm
        assert engine.stats()["entries"] == 3

    def test_matrix_keying_is_by_content(self):
        engine = ExplainEngine()
        X = _matrix(0)
        a = engine.scorer_for_matrix(X, LOF(k=5))
        assert engine.scorer_for_matrix(X.copy(), LOF(k=5)) is a
        assert engine.scorer_for_matrix(_matrix(1), LOF(k=5)) is not a

    def test_zero_budget_disables_pooling(self, dataset):
        engine = ExplainEngine(max_pool_bytes=0)
        a = engine.scorer_for(dataset, LOF(k=15))
        b = engine.scorer_for(dataset, LOF(k=15))
        assert a is not b
        stats = engine.stats()
        assert stats["entries"] == 0
        assert stats["misses"] == 2


class TestEviction:
    def test_entry_cap_evicts_least_recently_used(self):
        engine = ExplainEngine(max_pool_entries=2)
        detector = LOF(k=5)
        first = engine.scorer_for_matrix(_matrix(0), detector)
        second = engine.scorer_for_matrix(_matrix(1), detector)
        third = engine.scorer_for_matrix(_matrix(2), detector)
        assert engine.trim() == 1
        stats = engine.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        # The oldest entry went; the two youngest are still warm.
        assert engine.scorer_for_matrix(_matrix(1), detector) is second
        assert engine.scorer_for_matrix(_matrix(2), detector) is third
        assert engine.scorer_for_matrix(_matrix(0), detector) is not first

    def test_recency_protects_a_touched_entry(self):
        engine = ExplainEngine(max_pool_entries=2)
        detector = LOF(k=5)
        first = engine.scorer_for_matrix(_matrix(0), detector)
        engine.scorer_for_matrix(_matrix(1), detector)
        engine.scorer_for_matrix(_matrix(0), detector)  # touch: now newest
        engine.scorer_for_matrix(_matrix(2), detector)
        engine.trim()
        assert engine.scorer_for_matrix(_matrix(0), detector) is first

    def test_byte_budget_evicts_after_scores_accumulate(self):
        engine = ExplainEngine(max_pool_bytes=1)
        detector = LOF(k=5)
        old = engine.scorer_for_matrix(_matrix(0), detector)
        old.scores((0, 1))  # memoised score vector: pool now over budget
        new = engine.scorer_for_matrix(_matrix(1), detector)
        assert engine.pool_nbytes > engine.max_pool_bytes
        assert engine.trim() == 1
        assert engine.scorer_for_matrix(_matrix(1), detector) is new
        assert engine.scorer_for_matrix(_matrix(0), detector) is not old

    def test_the_last_entry_is_never_evicted(self, dataset):
        engine = ExplainEngine(max_pool_bytes=1)
        scorer = engine.scorer_for(dataset, LOF(k=15))
        scorer.scores((0, 1))
        assert engine.pool_nbytes > engine.max_pool_bytes
        assert engine.trim() == 0
        assert engine.scorer_for(dataset, LOF(k=15)) is scorer

    def test_clear_drops_everything_but_keeps_counters(self, dataset):
        engine = ExplainEngine()
        engine.scorer_for(dataset, LOF(k=15))
        engine.register_dataset(dataset)
        engine.clear()
        stats = engine.stats()
        assert stats["entries"] == 0
        assert stats["datasets"] == 0
        assert stats["misses"] == 1


class TestDatasetRegistry:
    def test_register_and_lookup(self, dataset):
        engine = ExplainEngine()
        assert engine.register_dataset(dataset) is dataset
        assert engine.dataset(dataset.name) is dataset
        assert dataset.name in engine.dataset_names

    def test_unregistered_name_falls_back_to_loader_and_pins(self):
        engine = ExplainEngine()
        first = engine.dataset("hics_14")
        assert first.name == "hics_14"
        assert engine.dataset("hics_14") is first
        assert engine.dataset_names == ("hics_14",)

    def test_rejects_non_dataset(self):
        with pytest.raises(ValidationError):
            ExplainEngine().register_dataset(object())


class TestConfiguration:
    def test_rejects_negative_byte_budget(self):
        with pytest.raises(ValidationError):
            ExplainEngine(max_pool_bytes=-1)

    def test_rejects_sub_unit_entry_cap(self):
        with pytest.raises(ValidationError):
            ExplainEngine(max_pool_entries=0)

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv(ENGINE_POOL_MB_ENV, raising=False)
        assert resolve_engine_pool_bytes() == DEFAULT_ENGINE_POOL_MB * 1024 * 1024

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_POOL_MB_ENV, "64")
        assert resolve_engine_pool_bytes() == 64 * 1024 * 1024

    def test_env_zero_and_negative_disable(self, monkeypatch):
        monkeypatch.setenv(ENGINE_POOL_MB_ENV, "0")
        assert resolve_engine_pool_bytes() == 0
        monkeypatch.setenv(ENGINE_POOL_MB_ENV, "-3")
        assert resolve_engine_pool_bytes() == 0

    def test_env_garbage_is_a_validation_error(self, monkeypatch):
        monkeypatch.setenv(ENGINE_POOL_MB_ENV, "lots")
        with pytest.raises(ValidationError):
            resolve_engine_pool_bytes()

    def test_stats_shape(self):
        stats = ExplainEngine().stats()
        assert set(stats) == {
            "entries", "datasets", "bytes", "max_bytes", "max_entries",
            "hits", "misses", "chained", "evictions", "hit_rate",
            "snapshots_written", "restored_vectors", "n_evaluations",
        }
