"""Unit tests for repro.serve.protocol (wire schema + resolution)."""

import json

import pytest

from repro.experiments.config import get_profile
from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode_line,
    error_from_exception,
    error_response,
    ok_response,
    parse_request,
    resolve_dataset,
    resolve_pipeline,
    result_to_wire,
)


@pytest.fixture(scope="module")
def profile():
    return get_profile("smoke")


def _explain(**overrides) -> dict:
    payload = {
        "v": PROTOCOL_VERSION,
        "id": "r1",
        "op": "explain",
        "dataset": "hics_14",
        "pipeline": "beam+lof",
        "dimensionality": 2,
    }
    payload.update(overrides)
    return payload


class TestLineCodec:
    def test_round_trip(self):
        payload = {"op": "ping", "id": "x", "v": 1}
        assert decode_line(encode_line(payload)) == payload

    def test_encoding_is_canonical(self):
        # Equal payloads built in different key orders produce equal
        # bytes — the property the byte-identity drill compares on.
        a = encode_line({"b": 1, "a": [1.5, 2]})
        b = encode_line({"a": [1.5, 2], "b": 1})
        assert a == b
        assert a.endswith(b"\n")
        assert b" " not in a

    def test_malformed_json_is_bad_request(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_line(b"{nope")
        assert excinfo.value.code == "bad_request"
        assert excinfo.value.transient is False

    def test_non_object_is_bad_request(self):
        with pytest.raises(ProtocolError) as excinfo:
            decode_line(b"[1, 2]\n")
        assert excinfo.value.code == "bad_request"


class TestParseRequest:
    def test_valid_explain_is_normalised(self):
        request = parse_request(
            _explain(id=7, points=[14, 12, 14, 13], deadline_ms=250)
        )
        assert request["id"] == "7"
        assert request["points"] == (12, 13, 14)
        assert request["deadline_ms"] == 250.0
        assert request["dimensionality"] == 2

    def test_points_null_means_all_points_of_interest(self):
        assert parse_request(_explain(points=None))["points"] is None
        assert parse_request(_explain())["points"] is None

    def test_ping_and_stats_need_no_explain_fields(self):
        for op in ("ping", "stats"):
            request = parse_request({"v": PROTOCOL_VERSION, "id": "p", "op": op})
            assert request == {"v": PROTOCOL_VERSION, "id": "p", "op": op}

    @pytest.mark.parametrize(
        "payload",
        [
            {"id": "x", "op": "ping"},  # missing version
            {"v": 99, "id": "x", "op": "ping"},  # wrong version
            {"v": PROTOCOL_VERSION, "id": "x", "op": "teleport"},
            {"v": PROTOCOL_VERSION, "op": "ping"},  # missing id
            _explain(dataset=None),
            _explain(dataset=""),
            _explain(pipeline=12),
            _explain(dimensionality="2"),
            _explain(dimensionality=True),
            _explain(dimensionality=0),
            _explain(points=[]),
            _explain(points=["twelve"]),
            _explain(points="12"),
            _explain(deadline_ms="soon"),
            _explain(deadline_ms=0),
            _explain(deadline_ms=-5),
        ],
    )
    def test_invalid_requests_are_bad_request(self, payload):
        with pytest.raises(ProtocolError) as excinfo:
            parse_request(payload)
        assert excinfo.value.code == "bad_request"
        assert excinfo.value.transient is False


class TestErrors:
    def test_unknown_code_is_a_programming_error(self):
        with pytest.raises(ValueError):
            ProtocolError("made_up", "boom")

    def test_transient_defaults_follow_the_code(self):
        assert ProtocolError("overloaded", "x").transient is True
        assert ProtocolError("deadline_exceeded", "x").transient is True
        assert ProtocolError("shutdown", "x").transient is True
        assert ProtocolError("bad_request", "x").transient is False
        assert ProtocolError("unknown_dataset", "x").transient is False
        assert ProtocolError("internal", "x", transient=True).transient is True

    def test_error_response_shape(self):
        response = error_response("r9", "overloaded", "queue is full")
        assert response == {
            "v": PROTOCOL_VERSION,
            "id": "r9",
            "ok": False,
            "error": {
                "code": "overloaded",
                "message": "queue is full",
                "transient": True,
            },
        }

    def test_ok_response_meta_is_optional(self):
        assert "meta" not in ok_response("r1", {"pong": True})
        assert ok_response("r1", {}, {"coalesced": 3})["meta"] == {"coalesced": 3}

    def test_protocol_error_keeps_its_code_on_the_wire(self):
        exc = ProtocolError("unknown_pipeline", "nope")
        response = error_from_exception("r1", exc)
        assert response["error"]["code"] == "unknown_pipeline"
        assert response["error"]["transient"] is False

    def test_other_exceptions_become_internal_with_ft_taxonomy(self):
        fatal = error_from_exception("r1", ValueError("bad maths"))
        assert fatal["error"]["code"] == "internal"
        assert fatal["error"]["transient"] is False
        assert "ValueError" in fatal["error"]["message"]
        flaky = error_from_exception("r1", OSError("worker churn"))
        assert flaky["error"]["code"] == "internal"
        assert flaky["error"]["transient"] is True

    def test_documented_codes_are_stable(self):
        assert ERROR_CODES == (
            "bad_request",
            "unknown_dataset",
            "unknown_pipeline",
            "overloaded",
            "deadline_exceeded",
            "internal",
            "shutdown",
            "worker_unavailable",
        )
        assert OPS == ("explain", "ping", "stats", "reload", "snapshot")


class TestResolution:
    def test_resolve_pipeline(self, profile):
        detector, explainer = resolve_pipeline("beam+lof", profile)
        assert detector.name == "lof"
        assert explainer.name == "beam"

    def test_explainers_are_fresh_per_call(self, profile):
        _, a = resolve_pipeline("lookout+lof", profile)
        _, b = resolve_pipeline("lookout+lof", profile)
        assert a is not b

    @pytest.mark.parametrize("name", ["beam", "+lof", "beam+", "beam+mystery",
                                      "mystery+lof"])
    def test_unserved_pipelines_are_rejected(self, profile, name):
        with pytest.raises(ProtocolError) as excinfo:
            resolve_pipeline(name, profile)
        assert excinfo.value.code == "unknown_pipeline"
        assert excinfo.value.transient is False

    def test_resolve_dataset_applies_profile_overrides(self, profile):
        dataset = resolve_dataset("hics_14", profile)
        assert dataset.X.shape[0] == profile.synthetic_samples
        # Same parameterisation twice -> the registry's memoised object.
        assert resolve_dataset("hics_14", profile) is dataset

    def test_unknown_dataset_is_rejected(self, profile):
        with pytest.raises(ProtocolError) as excinfo:
            resolve_dataset("atlantis", profile)
        assert excinfo.value.code == "unknown_dataset"


class TestResultToWire:
    @pytest.fixture(scope="class")
    def result(self, profile):
        from repro.pipeline.pipeline import ExplanationPipeline

        detector, explainer = resolve_pipeline("beam+lof", profile)
        dataset = resolve_dataset("hics_14", profile)
        points = dataset.ground_truth.points_at(2)[:2]
        return ExplanationPipeline(detector, explainer).run(
            dataset, 2, points=points
        )

    def test_wire_shape(self, result):
        wire = result_to_wire(result)
        assert wire["dataset"] == "hics_14"
        assert wire["pipeline"] == "beam+lof"
        assert wire["dimensionality"] == 2
        assert set(wire["evaluation"]) == {
            "map", "mean_recall", "per_point_ap", "per_point_recall",
        }
        for ranking in wire["explanations"].values():
            assert all(
                isinstance(f, int) for s in ranking["subspaces"] for f in s
            )
            assert all(isinstance(v, float) for v in ranking["scores"])
        assert wire["summary"] is None

    def test_wall_time_stays_off_the_wire(self, result):
        wire = result_to_wire(result)
        assert "seconds" not in wire
        assert "cost_breakdown" not in wire

    def test_encoding_is_deterministic_and_json_clean(self, result):
        a = encode_line(result_to_wire(result))
        b = encode_line(result_to_wire(result))
        assert a == b
        json.loads(a)  # pure JSON, no NaN/Infinity leakage
