"""Rendezvous-hash routing: determinism, minimal disruption, membership."""

import pytest

from repro.exceptions import ValidationError
from repro.serve.ring import HashRing, route_key


class TestRouteKey:
    def test_deterministic(self):
        for name in ("hics_14", "breast", "electricity", "hics_70"):
            assert route_key(name, 4) == route_key(name, 4)

    def test_in_range(self):
        for n_slots in (1, 2, 3, 8):
            for name in ("a", "b", "hics_14", "breast_diagnostic"):
                assert 0 <= route_key(name, n_slots) < n_slots

    def test_single_slot_owns_everything(self):
        assert route_key("anything", 1) == 0

    def test_growth_moves_keys_only_to_the_new_slot(self):
        # Rendezvous property: going n -> n+1 slots, a key either keeps
        # its slot or moves to the *new* slot — never between old slots.
        names = [f"dataset_{i}" for i in range(200)]
        for n in (2, 3, 4, 7):
            for name in names:
                before, after = route_key(name, n), route_key(name, n + 1)
                assert after == before or after == n

    def test_spreads_keys(self):
        # Not a statistical test — just that 200 keys over 4 slots do not
        # all collapse onto one slot.
        owners = {route_key(f"dataset_{i}", 4) for i in range(200)}
        assert owners == {0, 1, 2, 3}

    def test_rejects_zero_slots(self):
        with pytest.raises(ValidationError):
            route_key("x", 0)


class TestHashRing:
    def test_matches_route_key_when_fully_live(self):
        ring = HashRing(4)
        for name in ("hics_14", "breast", "hics_23"):
            assert ring.route(name) == route_key(name, 4)
            assert ring.preferred(name) == route_key(name, 4)

    def test_down_spills_only_the_dead_slots_keys(self):
        ring = HashRing(4)
        names = [f"dataset_{i}" for i in range(100)]
        owners = {name: ring.route(name) for name in names}
        victim = ring.route("hics_14")
        ring.mark_down(victim)
        for name in names:
            if owners[name] == victim:
                assert ring.route(name) != victim
            else:
                assert ring.route(name) == owners[name]

    def test_up_snaps_keys_back(self):
        ring = HashRing(3)
        owner = ring.route("breast")
        ring.mark_down(owner)
        assert ring.route("breast") != owner
        ring.mark_up(owner)
        assert ring.route("breast") == owner

    def test_preferred_ignores_membership(self):
        ring = HashRing(3)
        owner = ring.preferred("breast")
        ring.mark_down(owner)
        # route() spills, preferred() still names the warm-state owner.
        assert ring.preferred("breast") == owner
        assert ring.route("breast") != owner

    def test_live_slots(self):
        ring = HashRing(3)
        assert ring.live_slots == (0, 1, 2)
        ring.mark_down(1)
        assert ring.live_slots == (0, 2)
        assert not ring.is_live(1)
        ring.mark_up(1)
        assert ring.live_slots == (0, 1, 2)

    def test_no_live_slots_raises(self):
        ring = HashRing(2)
        ring.mark_down(0)
        ring.mark_down(1)
        with pytest.raises(ValidationError):
            ring.route("x")

    def test_slot_bounds_checked(self):
        ring = HashRing(2)
        with pytest.raises(ValidationError):
            ring.mark_down(2)
        with pytest.raises(ValidationError):
            ring.mark_up(-1)

    def test_rejects_empty_ring(self):
        with pytest.raises(ValidationError):
            HashRing(0)
