"""End-to-end tests for the asyncio explain server over real sockets."""

import socket
import threading
import time

import pytest

from repro.exceptions import ValidationError
from repro.experiments.config import get_profile
from repro.serve.client import ServeClient
from repro.serve.protocol import PROTOCOL_VERSION, decode_line, encode_line
from repro.serve.server import ExplainServer, ServerConfig

PROFILE = get_profile("smoke")
POINTS = None  # filled by the dataset fixture below


@pytest.fixture(scope="module")
def handle():
    server = ExplainServer(
        ServerConfig(port=0, profile="smoke", warm=("hics_14",))
    )
    handle = server.run_in_thread()
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def client(handle):
    with ServeClient(handle.host, handle.port) as client:
        yield client


@pytest.fixture(scope="module")
def gt_points():
    from repro.serve.protocol import resolve_dataset

    return resolve_dataset("hics_14", PROFILE).ground_truth.points_at(2)


class TestOps:
    def test_ping(self, client):
        assert client.ping() is True

    def test_explain_round_trip(self, client, gt_points):
        response = client.explain(
            "hics_14", "beam+lof", 2, points=list(gt_points)
        )
        assert response["ok"] is True
        result = response["result"]
        assert result["pipeline"] == "beam+lof"
        assert set(result["explanations"]) == {str(p) for p in gt_points}
        meta = response["meta"]
        assert meta["coalesced"] >= 1
        assert meta["queue_ms"] >= 0
        assert meta["n_subspaces_scored"] >= 0

    def test_summary_pipeline_round_trip(self, client, gt_points):
        response = client.explain(
            "hics_14", "lookout+lof", 2, points=list(gt_points)
        )
        assert response["ok"] is True
        assert response["result"]["summary"] is not None

    def test_stats_reflect_served_work(self, client):
        stats = client.stats()
        assert stats["profile"] == "smoke"
        assert stats["waves"] >= 1
        assert stats["engine"]["entries"] >= 1
        assert stats["engine"]["datasets"] >= 1  # the warm hics_14
        assert stats["queue_depth"] == 0

    def test_requests_on_one_connection_are_sequential(self, client, gt_points):
        # The client is strictly request/response; two explains on the
        # same connection must both complete in order.
        first = client.explain("hics_14", "beam+lof", 2, points=[gt_points[0]])
        second = client.explain("hics_14", "beam+lof", 2, points=[gt_points[1]])
        assert first["ok"] and second["ok"]
        assert first["id"] != second["id"]


class TestErrors:
    def test_malformed_json_line(self, handle):
        with socket.create_connection((handle.host, handle.port), timeout=30) as sock:
            sock.sendall(b"{nope\n")
            response = decode_line(sock.makefile("rb").readline())
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"
        assert response["id"] is None

    def test_wrong_protocol_version(self, client):
        response = client.request({"v": 99, "op": "ping"})
        assert response["error"]["code"] == "bad_request"
        assert response["error"]["transient"] is False

    def test_unknown_dataset(self, client):
        response = client.explain("atlantis", "beam+lof", 2)
        assert response["error"]["code"] == "unknown_dataset"
        assert response["error"]["transient"] is False

    def test_unknown_pipeline(self, client):
        response = client.explain("hics_14", "beam+mystery", 2)
        assert response["error"]["code"] == "unknown_pipeline"

    def test_pipeline_exception_maps_to_internal(self, client):
        # Point 0 is not a ground-truth outlier at dimensionality 2, so
        # evaluation raises ValidationError inside the batch — which must
        # come back as a fatal internal error, not kill the connection.
        response = client.explain("hics_14", "beam+lof", 2, points=[0])
        assert response["error"]["code"] == "internal"
        assert response["error"]["transient"] is False
        assert client.ping() is True

    def test_expired_deadline_is_rejected_from_the_queue(self, client, gt_points):
        response = client.explain(
            "hics_14", "beam+lof", 2,
            points=[gt_points[0]], deadline_ms=1e-6,
        )
        assert response["error"]["code"] == "deadline_exceeded"
        assert response["error"]["transient"] is True


class TestAdmissionControl:
    def test_queue_overflow_is_rejected_as_overloaded(self, gt_points):
        server = ExplainServer(
            ServerConfig(port=0, profile="smoke", max_queue=1,
                         warm=("hics_14",))
        )
        # Gate the engine so the first wave blocks until released — then
        # the queue fills deterministically, no timing assumptions.
        original = server.engine.explain_many
        computing = threading.Event()
        release = threading.Event()

        def gated(*args, **kwargs):
            computing.set()
            assert release.wait(timeout=60)
            return original(*args, **kwargs)

        server.engine.explain_many = gated
        with server.run_in_thread() as handle:
            results: dict[str, dict] = {}

            def fire(label):
                with ServeClient(handle.host, handle.port, timeout=120) as c:
                    results[label] = c.explain(
                        "hics_14", "beam+lof", 2, points=[gt_points[0]]
                    )

            blocker = threading.Thread(target=fire, args=("blocker",))
            blocker.start()
            assert computing.wait(timeout=30)
            queued = threading.Thread(target=fire, args=("queued",))
            queued.start()
            with ServeClient(handle.host, handle.port) as probe:
                deadline = time.monotonic() + 30
                while probe.stats()["queue_depth"] < 1:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
            fire("rejected")  # beyond max_queue=1: rejected immediately
            release.set()
            blocker.join()
            queued.join()

        assert results["blocker"]["ok"] is True
        assert results["queued"]["ok"] is True
        assert results["rejected"]["error"]["code"] == "overloaded"
        assert results["rejected"]["error"]["transient"] is True


class TestLifecycle:
    def test_stopped_server_refuses_connections(self):
        server = ExplainServer(ServerConfig(port=0, profile="smoke"))
        handle = server.run_in_thread()
        host, port = handle.host, handle.port
        with ServeClient(host, port) as client:
            assert client.ping() is True
        handle.stop()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2)

    def test_heartbeat_records_dispatch_waves(self, tmp_path, gt_points):
        import json

        heartbeat = tmp_path / "serve_heartbeat.jsonl"
        server = ExplainServer(
            ServerConfig(port=0, profile="smoke", warm=("hics_14",),
                         heartbeat_jsonl=str(heartbeat))
        )
        with server.run_in_thread() as handle:
            with ServeClient(handle.host, handle.port) as client:
                assert client.explain(
                    "hics_14", "beam+lof", 2, points=[gt_points[0]]
                )["ok"]
        records = [
            json.loads(line) for line in heartbeat.read_text().splitlines()
        ]
        assert records
        assert set(records[0]) == {
            "wave", "requests", "groups", "batches", "queue_depth",
            "engine_entries",
        }
        assert records[0]["requests"] >= 1


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue": 0},
            {"max_batch": 0},
            {"default_deadline_ms": 0.0},
            {"default_deadline_ms": -1.0},
        ],
    )
    def test_rejected_configs(self, kwargs):
        with pytest.raises(ValidationError):
            ServerConfig(**kwargs)

    def test_client_fills_version_and_id(self, handle):
        with ServeClient(handle.host, handle.port) as client:
            response = client.request({"op": "ping"})
        assert response["v"] == PROTOCOL_VERSION
        assert response["id"] == "c1"

    def test_encode_line_is_one_line(self):
        assert encode_line({"a": 1}).count(b"\n") == 1
