"""Engine snapshot/restore: the warm state a restarted worker recovers.

Two levels. The engine-level tests pin the snapshot format contract
(round trip, fingerprint poisoning, atomic writes). The server-level
drill is the satellite acceptance test: serve warm -> snapshot -> kill
the server -> boot a replacement from the snapshot -> every response is
byte-identical to the always-warm server's, with ``n_evaluations == 0``
proving the replacement recomputed nothing — under both the serial and
thread execution backends.
"""

import json
import os

import pytest

from repro.datasets import load_dataset
from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.serve.client import ServeClient
from repro.serve.engine import SNAPSHOT_VERSION, ExplainEngine
from repro.serve.protocol import encode_line
from repro.serve.server import ExplainServer, ServerConfig


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("hics_14")


def _warm_engine(dataset) -> ExplainEngine:
    engine = ExplainEngine()
    engine.register_dataset(dataset)
    scorer = engine.scorer_for(dataset, LOF(k=15))
    for subspace in ((0, 1), (2, 3), (1, 2, 3)):
        scorer.scores(subspace)
    return engine


class TestEngineRoundTrip:
    def test_snapshot_restore_preserves_vectors_bit_for_bit(self, dataset):
        source = _warm_engine(dataset)
        snapshot = source.snapshot()
        assert snapshot["version"] == SNAPSHOT_VERSION
        assert snapshot["kind"] == "engine_snapshot"

        restored = ExplainEngine()
        counts = restored.restore_snapshot(
            snapshot, resolver=lambda name: dataset
        )
        assert counts == {
            "datasets": 1, "entries": 1, "vectors": 3, "skipped": 0,
        }
        original = dict(
            source.scorer_for(dataset, LOF(k=15)).export_cache()
        )
        scorer = restored.scorer_for(dataset, LOF(k=15))
        for subspace, scores in scorer.export_cache():
            assert scores.tobytes() == original[subspace].tobytes()
        # Serving the same subspaces runs zero detector evaluations.
        for subspace in ((0, 1), (2, 3), (1, 2, 3)):
            scorer.scores(subspace)
        assert scorer.n_evaluations == 0

    def test_file_round_trip_is_atomic_and_json(self, dataset, tmp_path):
        path = tmp_path / "snapshots" / "worker-0.json"
        _warm_engine(dataset).save_snapshot(path)
        assert path.is_file()
        # No tmp litter: the unique tmp file was replaced, not abandoned.
        assert os.listdir(path.parent) == ["worker-0.json"]
        with open(path, encoding="utf-8") as fh:
            on_disk = json.load(fh)
        restored = ExplainEngine()
        counts = restored.restore_snapshot(path, resolver=lambda name: dataset)
        assert counts["vectors"] == 3
        assert on_disk["version"] == SNAPSHOT_VERSION

    def test_fingerprint_mismatch_poisons_the_name(self, dataset):
        snapshot = _warm_engine(dataset).snapshot()
        other = load_dataset("breast")  # resolves, but wrong fingerprint
        restored = ExplainEngine()
        counts = restored.restore_snapshot(snapshot, resolver=lambda name: other)
        assert counts["datasets"] == 0
        assert counts["entries"] == 0
        assert counts["vectors"] == 0
        assert counts["skipped"] == 2  # the dataset record and its entry
        assert restored.stats()["entries"] == 0

    def test_unresolvable_dataset_is_skipped(self, dataset):
        snapshot = _warm_engine(dataset).snapshot()

        def resolver(name):
            raise ValidationError(f"no such dataset {name}")

        restored = ExplainEngine()
        counts = restored.restore_snapshot(snapshot, resolver=resolver)
        assert counts["vectors"] == 0
        assert counts["skipped"] == 2

    def test_rejects_foreign_payloads(self, dataset):
        restored = ExplainEngine()
        with pytest.raises(ValidationError):
            restored.restore_snapshot({"version": 999, "kind": "engine_snapshot"})
        with pytest.raises(ValidationError):
            restored.restore_snapshot({"version": SNAPSHOT_VERSION, "kind": "other"})


REQUESTS = (
    ("beam+lof", None),
    ("refout+lof", None),
    ("lookout+lof", None),
)


def _fire(handle) -> tuple[list[bytes], dict]:
    wire = []
    with ServeClient(handle.host, handle.port, timeout=300.0) as client:
        for pipeline, points in REQUESTS:
            response = client.explain("hics_14", pipeline, 2, points=points)
            assert response["ok"], response
            wire.append(encode_line(response["result"]))
        stats = client.stats()
    return wire, stats


@pytest.mark.parametrize("backend", ["serial", "thread"])
def test_server_snapshot_kill_restore_round_trip(backend, tmp_path):
    snapshot_path = str(tmp_path / f"worker-0.{backend}.json")

    # Always-warm server: pays the cold searches, snapshots on stop.
    warm_server = ExplainServer(
        ServerConfig(
            port=0,
            profile="smoke",
            warm=("hics_14",),
            backend=backend,
            snapshot_path=snapshot_path,
        )
    )
    handle = warm_server.run_in_thread()
    try:
        warm_wire, warm_stats = _fire(handle)
    finally:
        handle.stop()  # the clean-stop path writes the final snapshot
    assert os.path.isfile(snapshot_path)
    assert warm_stats["engine"]["n_evaluations"] > 0  # it computed

    # Replacement server: no warm list — everything it knows comes from
    # the snapshot, restored before accepting connections.
    restored_server = ExplainServer(
        ServerConfig(
            port=0,
            profile="smoke",
            backend=backend,
            snapshot_path=snapshot_path,
        )
    )
    handle = restored_server.run_in_thread()
    try:
        restored_wire, restored_stats = _fire(handle)
    finally:
        handle.stop()

    assert restored_wire == warm_wire  # byte-identical across the restart
    engine = restored_stats["engine"]
    assert engine["restored_vectors"] > 0
    # The restored worker served every request from snapshot state: zero
    # detector evaluations — no cold recompute happened at all.
    assert engine["n_evaluations"] == 0
