"""Orphan drills: no /dev/shm leftovers on exit, signal, or crash."""

import glob
import os
import signal
import subprocess
import sys
import time

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

_CHILD = """
import os, sys
import numpy as np
from repro.shm import get_plane

plane = get_plane()
arr = np.arange(4000, dtype=np.float64).reshape(100, 40)
refs = [plane.publish(arr), plane.publish(arr * 2, key=("block", 5, 1))]
lease = plane.lease([ref.key for ref in refs])
print("\\n".join(ref.segment for ref in refs), flush=True)
mode = sys.argv[1]
if mode == "exit":
    sys.exit(0)                      # atexit hook must unlink
if mode == "wait":                   # parent delivers SIGTERM
    import time
    time.sleep(30)
"""


def _spawn(mode: str) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.Popen(
        [sys.executable, "-c", _CHILD, mode],
        env=env,
        stdout=subprocess.PIPE,
        text=True,
    )


def _read_segments(proc: subprocess.Popen) -> list[str]:
    segments = []
    assert proc.stdout is not None
    for _ in range(2):
        line = proc.stdout.readline().strip()
        assert line, "child failed to publish"
        segments.append(line)
    return segments


def _assert_unlinked(segments: list[str]) -> None:
    for name in segments:
        assert not os.path.exists(f"/dev/shm/{name}"), (
            f"orphaned shared-memory segment {name}"
        )


class TestNoOrphans:
    def test_clean_exit_unlinks_via_atexit(self):
        proc = _spawn("exit")
        segments = _read_segments(proc)
        assert proc.wait(timeout=30) == 0
        _assert_unlinked(segments)

    def test_sigterm_unlinks_via_handler(self):
        proc = _spawn("wait")
        segments = _read_segments(proc)
        for name in segments:  # alive while the child holds its lease
            assert os.path.exists(f"/dev/shm/{name}")
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)
        _assert_unlinked(segments)

    def test_process_grid_smoke_leaves_no_segments(self):
        # The CI leak-check leg in miniature: a sharded process-backend
        # grid run, then the glob that must come back empty.
        before = set(glob.glob("/dev/shm/repro_shm_*"))
        script = (
            "from repro.datasets.synthetic import make_hics_dataset\n"
            "from repro.detectors import LOF\n"
            "from repro.explainers import Beam\n"
            "from repro.pipeline.parallel import run_grid_parallel\n"
            "table, *_ = run_grid_parallel(\n"
            "    [make_hics_dataset(n_features=14, n_samples=150, seed=0)],\n"
            "    [LOF(k=10)],\n"
            "    [lambda: Beam(beam_width=5, result_size=5)],\n"
            "    [2], n_jobs=2, backend='process', shards='auto')\n"
            "assert len(table)\n"
        )
        env = dict(os.environ, PYTHONPATH=REPO_SRC, REPRO_SHM="1")
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        time.sleep(0.2)
        after = set(glob.glob("/dev/shm/repro_shm_*"))
        assert after - before == set()
