"""Tests for the shared-memory data plane (repro.shm.plane)."""

import os
import pickle

import numpy as np
import pytest

from repro.datasets.synthetic import make_hics_dataset
from repro.exceptions import ValidationError
from repro.shm import (
    ArrayRef,
    SEGMENT_PREFIX,
    SHM_ENV,
    SHM_REGISTRY_ENV,
    SharedMemoryPlane,
    array_fingerprint,
    get_plane,
    shm_enabled,
)


def _segment_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


@pytest.fixture
def plane():
    """A private plane instance, always cleaned up."""
    p = SharedMemoryPlane()
    yield p
    p.cleanup()


@pytest.fixture
def arr():
    rng = np.random.default_rng(7)
    return rng.standard_normal((40, 6))


class TestShmEnabled:
    @pytest.mark.parametrize("raw", ["0", "off", "false", "no", " OFF "])
    def test_disabled_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(SHM_ENV, raw)
        assert not shm_enabled()

    @pytest.mark.parametrize("raw", [None, "", "1", "on", "yes"])
    def test_enabled_spellings(self, monkeypatch, raw):
        if raw is None:
            monkeypatch.delenv(SHM_ENV, raising=False)
        else:
            monkeypatch.setenv(SHM_ENV, raw)
        assert shm_enabled()


class TestArrayFingerprint:
    def test_content_stable(self, arr):
        assert array_fingerprint(arr) == array_fingerprint(arr.copy())

    def test_shape_sensitive(self):
        flat = np.arange(12, dtype=np.float64)
        assert array_fingerprint(flat) != array_fingerprint(
            flat.reshape(3, 4)
        )

    def test_matches_dataset_fingerprint(self):
        # One identity from the plane keys down to the scorer caches.
        dataset = make_hics_dataset(n_features=14, n_samples=150, seed=0)
        assert array_fingerprint(dataset.X) == dataset.fingerprint[1]


class TestPublishAttach:
    def test_bit_identity_through_foreign_plane(self, plane, arr):
        ref = plane.publish(arr)
        other = SharedMemoryPlane()
        try:
            view = other.attach(ref)
            assert view is not None
            assert view.base is not arr
            np.testing.assert_array_equal(view, arr)
            assert not view.flags.writeable
        finally:
            other.cleanup()

    def test_publish_idempotent(self, plane, arr):
        first = plane.publish(arr)
        second = plane.publish(arr.copy())
        assert first == second
        assert plane.stats()["segments"] == 1

    def test_segment_name_carries_prefix(self, plane, arr):
        ref = plane.publish(arr)
        assert ref.segment.startswith(SEGMENT_PREFIX)

    def test_caller_key_fingerprint_is_trusted(self, plane, arr):
        ref = plane.publish(arr, key=("block", 12345, 3))
        assert ref.key == ("block", 12345, 3)
        assert ref.fingerprint == 12345

    def test_local_attach_resolves_own_publication(self, plane, arr):
        ref = plane.publish(arr)
        view = plane.attach(ref)
        assert view is not None
        np.testing.assert_array_equal(view, arr)

    def test_attach_missing_segment_returns_none(self, plane):
        ref = ArrayRef(
            key=("data", 1),
            segment=f"{SEGMENT_PREFIX}deadbeef_00000000",
            shape=(4, 4),
            dtype="float64",
            fingerprint=1,
        )
        assert plane.attach(ref) is None

    def test_attach_truncated_segment_rejected(self, plane, arr):
        ref = plane.publish(arr)
        # A ref claiming more bytes than the segment holds must never
        # hand out garbage bits.
        oversized = ArrayRef(
            key=("data", 999),
            segment=ref.segment,
            shape=(arr.shape[0] * 8, arr.shape[1]),
            dtype="float64",
            fingerprint=999,
        )
        other = SharedMemoryPlane()
        try:
            assert other.attach(oversized) is None
        finally:
            other.cleanup()


class TestLease:
    def test_release_to_zero_unlinks(self, plane, arr):
        ref = plane.publish(arr)
        first = plane.lease([ref.key])
        second = plane.lease([ref.key])
        first.release()
        assert _segment_exists(ref.segment)
        second.release()
        assert not _segment_exists(ref.segment)
        assert plane.stats()["segments"] == 0

    def test_release_idempotent(self, plane, arr):
        ref = plane.publish(arr)
        lease = plane.lease([ref.key])
        lease.release()
        lease.release()  # double release must not underflow a new lease
        assert not _segment_exists(ref.segment)

    def test_context_manager_releases(self, plane, arr):
        ref = plane.publish(arr)
        with plane.lease([ref.key]):
            assert _segment_exists(ref.segment)
        assert not _segment_exists(ref.segment)

    def test_unknown_keys_are_skipped(self, plane):
        lease = plane.lease([("data", 404)])
        assert lease.keys == ()
        lease.release()


class TestAdopt:
    def test_adopts_published_bits(self, plane, arr):
        plane.publish(arr)
        view = plane.adopt(arr.copy())
        assert view is not None
        np.testing.assert_array_equal(view, arr)
        assert not view.flags.writeable

    def test_unpublished_content_returns_none(self, plane, arr):
        assert plane.adopt(arr) is None

    def test_disabled_returns_none(self, plane, arr, monkeypatch):
        plane.publish(arr)
        monkeypatch.setenv(SHM_ENV, "0")
        assert plane.adopt(arr) is None


class TestRegistry:
    def test_export_and_resolve(self, plane, arr, tmp_path, monkeypatch):
        ref = plane.publish(arr)
        path = tmp_path / "registry.json"
        assert plane.export_registry(str(path)) == 1
        monkeypatch.setenv(SHM_REGISTRY_ENV, str(path))
        child = SharedMemoryPlane()
        try:
            resolved = child.ref(ref.key)
            assert resolved == ref
            view = child.attach(resolved)
            assert view is not None
            np.testing.assert_array_equal(view, arr)
        finally:
            child.cleanup()

    def test_invalidate_rereads(self, plane, arr, tmp_path, monkeypatch):
        path = tmp_path / "registry.json"
        plane.export_registry(str(path))  # empty registry
        monkeypatch.setenv(SHM_REGISTRY_ENV, str(path))
        child = SharedMemoryPlane()
        try:
            ref = plane.publish(arr)
            assert child.ref(ref.key) is None  # cached empty registry
            plane.export_registry(str(path))
            child.invalidate_registry()
            assert child.ref(ref.key) == ref
        finally:
            child.cleanup()

    def test_unreadable_registry_raises(self, tmp_path, monkeypatch):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        monkeypatch.setenv(SHM_REGISTRY_ENV, str(path))
        child = SharedMemoryPlane()
        try:
            with pytest.raises(ValidationError):
                child.ref(("data", 1))
        finally:
            child.cleanup()


class TestCleanup:
    def test_cleanup_unlinks_everything(self, arr):
        plane = SharedMemoryPlane()
        refs = [
            plane.publish(arr),
            plane.publish(arr * 2, key=("block", 7, 0)),
        ]
        plane.cleanup()
        for ref in refs:
            assert not _segment_exists(ref.segment)
        assert plane.stats() == {
            "segments": 0, "bytes": 0, "leases": 0, "attached": 0,
        }

    def test_cleanup_idempotent(self, plane, arr):
        plane.publish(arr)
        plane.cleanup()
        plane.cleanup()


class TestDatasetPickle:
    """Dataset matrices ship as segment refs when published (tentpole)."""

    @pytest.fixture
    def dataset(self):
        return make_hics_dataset(n_features=14, n_samples=150, seed=1)

    def test_round_trip_attaches_same_bits(self, dataset):
        plane = get_plane()
        ref = plane.publish(dataset.X, key=("data", dataset.fingerprint[1]))
        try:
            with plane.lease([ref.key]):
                blob = pickle.dumps(dataset)
                # The matrix travelled as a ref, not as bytes.
                assert len(blob) < dataset.X.nbytes
                clone = pickle.loads(blob)
                np.testing.assert_array_equal(clone.X, dataset.X)
                assert clone.fingerprint == dataset.fingerprint
                assert clone.outliers == dataset.outliers
        finally:
            plane.cleanup()

    def test_plain_pickle_without_publication(self, dataset):
        # Nothing published: the classic byte-shipping round trip.
        clone = pickle.loads(pickle.dumps(dataset))
        np.testing.assert_array_equal(clone.X, dataset.X)
        assert clone.X.base is None or clone.X.base is not dataset.X

    def test_disabled_ships_bytes(self, dataset, monkeypatch):
        plane = get_plane()
        plane.publish(dataset.X, key=("data", dataset.fingerprint[1]))
        try:
            monkeypatch.setenv(SHM_ENV, "0")
            clone = pickle.loads(pickle.dumps(dataset))
            np.testing.assert_array_equal(clone.X, dataset.X)
        finally:
            plane.cleanup()

    def test_vanished_segment_is_loud(self, dataset):
        plane = get_plane()
        ref = plane.publish(dataset.X, key=("data", dataset.fingerprint[1]))
        try:
            blob = pickle.dumps(dataset)
            plane.cleanup()  # segment gone before the worker deserialises
            fresh = SharedMemoryPlane()
            # The global plane resolves its own publication from memory,
            # so drop the local mapping too by unpickling after cleanup.
            with pytest.raises(RuntimeError, match="vanished before attach"):
                pickle.loads(blob)
            fresh.cleanup()
            assert not _segment_exists(ref.segment)
        finally:
            plane.cleanup()
