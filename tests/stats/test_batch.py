"""Unit tests for repro.stats.batch (scalar kernels as the oracle).

The batched kernels' contract is equivalence with the scalar statistics
substrate: KS statistics/p-values and the Student-t survival function are
*bit-identical*, Welch statistics agree to the last ulp with every
degenerate-case rule replicated exactly. Constants in the degenerate
tests are exactly representable so that sample variances are exactly
zero, exercising the branches rather than their float neighbourhood.
"""

import math

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.obs import metrics as obs_metrics
from repro.stats import ks_statistic, ks_test, welch_statistic, welch_t_test
from repro.stats.batch import (
    STATS_BATCH_ENV,
    batch_enabled,
    kolmogorov_sf_batch,
    ks_p_values,
    ks_statistic_batch,
    masked_mean_var,
    student_t_sf_batch,
    tie_run_ends,
    welch_p_values,
    welch_statistic_batch,
)
from repro.stats.special import kolmogorov_sf, student_t_sf


class TestBatchEnabled:
    @pytest.mark.parametrize("value", ["0", "false", "off", "no", " OFF ", "No"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(STATS_BATCH_ENV, value)
        assert batch_enabled() is False

    @pytest.mark.parametrize("value", ["1", "true", "on", "yes", "", "anything"])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv(STATS_BATCH_ENV, value)
        assert batch_enabled() is True

    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv(STATS_BATCH_ENV, raising=False)
        assert batch_enabled() is True


class TestStudentTSfBatch:
    def test_bit_identical_to_scalar(self):
        gen = np.random.default_rng(3)
        t = gen.normal(0, 3, size=200)
        df = gen.uniform(1.0, 60.0, size=200)
        batched = student_t_sf_batch(t, df)
        for i in range(t.shape[0]):
            assert batched[i] == student_t_sf(float(t[i]), float(df[i]))

    def test_one_sided_bit_identical(self):
        gen = np.random.default_rng(4)
        t = gen.normal(0, 2, size=100)
        df = gen.uniform(1.0, 30.0, size=100)
        batched = student_t_sf_batch(t, df, two_sided=False)
        for i in range(t.shape[0]):
            assert batched[i] == student_t_sf(
                float(t[i]), float(df[i]), two_sided=False
            )

    def test_nan_and_infinite_statistics(self):
        out = student_t_sf_batch(
            np.array([np.nan, np.inf, -np.inf, 0.0]), np.array([5.0])
        )
        assert math.isnan(out[0])
        assert out[1] == 0.0
        assert out[2] == 0.0
        assert out[3] == 1.0

    def test_scalar_df_broadcasts(self):
        t = np.array([0.5, 1.5, 2.5])
        assert np.array_equal(
            student_t_sf_batch(t, 7.0), student_t_sf_batch(t, np.full(3, 7.0))
        )

    def test_rejects_nonpositive_df(self):
        with pytest.raises(ValidationError):
            student_t_sf_batch(np.array([1.0]), np.array([0.0]))


class TestKolmogorovSfBatch:
    def test_bit_identical_to_scalar(self):
        x = np.linspace(0.0, 3.0, 61)
        batched = kolmogorov_sf_batch(x)
        for i in range(x.shape[0]):
            assert batched[i] == kolmogorov_sf(float(x[i]))


class TestMaskedMeanVar:
    def test_matches_numpy_per_row(self):
        gen = np.random.default_rng(5)
        values = gen.normal(size=40)
        membership = gen.random((8, 40)) < 0.4
        membership[0, :3] = True  # guarantee at least one row with >= 2
        counts, means, variances = masked_mean_var(values, membership)
        for b in range(8):
            sel = values[membership[b]]
            assert counts[b] == sel.shape[0]
            if sel.shape[0] >= 1:
                assert means[b] == pytest.approx(np.mean(sel), rel=1e-13)
            if sel.shape[0] >= 2:
                assert variances[b] == pytest.approx(
                    np.var(sel, ddof=1), rel=1e-12
                )

    def test_empty_and_singleton_rows_are_finite(self):
        values = np.array([1.0, 2.0, 3.0])
        membership = np.array([[False, False, False], [True, False, False]])
        counts, means, variances = masked_mean_var(values, membership)
        assert list(counts) == [0, 1]
        assert np.isfinite(means).all()
        assert np.isfinite(variances).all()


class TestWelchStatisticBatch:
    def _summaries(self, samples):
        return (
            np.array([float(np.mean(s)) for s in samples]),
            np.array([float(np.var(s, ddof=1)) for s in samples]),
            np.array([s.shape[0] for s in samples]),
        )

    def test_matches_scalar_on_random_samples(self):
        gen = np.random.default_rng(6)
        slices = [gen.normal(gen.uniform(-1, 1), gen.uniform(0.5, 2),
                             size=gen.integers(2, 30)) for _ in range(25)]
        marginal = gen.normal(size=100)
        mean_a, var_a, n_a = self._summaries(slices)
        statistic, df = welch_statistic_batch(
            mean_a, var_a, n_a,
            float(np.mean(marginal)), float(np.var(marginal, ddof=1)),
            marginal.shape[0],
        )
        for i, s in enumerate(slices):
            ref_stat, ref_df = welch_statistic(s, marginal)
            assert statistic[i] == ref_stat
            assert df[i] == ref_df

    def test_both_constant_equal_means(self):
        statistic, df = welch_statistic_batch(
            np.array([1.5]), np.array([0.0]), np.array([3]),
            np.array([1.5]), np.array([0.0]), np.array([4]),
        )
        assert math.isnan(statistic[0])
        assert df[0] == 1.0
        assert welch_p_values(statistic, df)[0] == 1.0
        ref = welch_t_test([1.5, 1.5, 1.5], [1.5, 1.5, 1.5, 1.5])
        assert math.isnan(ref.statistic) and ref.p_value == 1.0

    def test_both_constant_different_means(self):
        statistic, df = welch_statistic_batch(
            np.array([1.0, 4.0]), np.array([0.0, 0.0]), np.array([2, 2]),
            np.array([2.0, 2.0]), np.array([0.0, 0.0]), np.array([2, 2]),
        )
        assert statistic[0] == -math.inf
        assert statistic[1] == math.inf
        assert list(df) == [1.0, 1.0]
        assert list(welch_p_values(statistic, df)) == [0.0, 0.0]
        ref = welch_t_test([1.0, 1.0], [2.0, 2.0])
        assert ref.statistic == -math.inf and ref.p_value == 0.0

    def test_one_constant_sample_matches_scalar(self):
        # var_a == 0 exactly: the Welch-Satterthwaite denominator must
        # drop the a-term, exactly like the scalar guard.
        a = np.array([2.0, 2.0, 2.0])
        b = np.array([1.0, 3.0, 5.0, 7.0])
        statistic, df = welch_statistic_batch(
            np.array([float(np.mean(a))]), np.array([0.0]), np.array([a.shape[0]]),
            float(np.mean(b)), float(np.var(b, ddof=1)), b.shape[0],
        )
        ref_stat, ref_df = welch_statistic(a, b)
        assert statistic[0] == ref_stat
        assert df[0] == ref_df

    def test_mixed_degenerate_and_regular_rows(self):
        statistic, df = welch_statistic_batch(
            np.array([1.0, 0.0]), np.array([0.0, 1.0]), np.array([2, 10]),
            np.array([1.0, 0.5]), np.array([0.0, 2.0]), np.array([2, 10]),
        )
        assert math.isnan(statistic[0])
        assert np.isfinite(statistic[1])
        p = welch_p_values(statistic, df)
        assert p[0] == 1.0
        assert 0.0 < p[1] < 1.0

    def test_increments_batch_metrics(self):
        obs_metrics.reset()
        calls = obs_metrics.counter(
            "repro_stats_batch_calls_total",
            "Batched two-sample test calls, by test (welch / ks)",
        )
        before = calls.value(test="welch")
        welch_statistic_batch(
            np.zeros(7), np.ones(7), np.full(7, 5),
            0.0, 1.0, 50,
        )
        assert calls.value(test="welch") == before + 1


class TestKsStatisticBatch:
    def _slices_vs_marginal(self, marginal, membership):
        """Batched statistics alongside the scalar oracle per row."""
        order = np.argsort(marginal, kind="stable")
        member_sorted = membership[:, order]
        run_ends = tie_run_ends(marginal[order])
        batched = ks_statistic_batch(member_sorted, run_ends)
        scalar = [
            ks_statistic(marginal[membership[b]], marginal)
            for b in range(membership.shape[0])
        ]
        return batched, scalar

    def test_bit_identical_without_ties(self):
        gen = np.random.default_rng(7)
        marginal = gen.normal(size=60)
        membership = gen.random((12, 60)) < 0.3
        membership[:, 0] = True  # no empty slice
        batched, scalar = self._slices_vs_marginal(marginal, membership)
        assert list(batched) == scalar

    def test_bit_identical_with_ties(self):
        gen = np.random.default_rng(8)
        marginal = gen.integers(0, 6, size=50).astype(np.float64)
        membership = gen.random((10, 50)) < 0.4
        membership[:, 0] = True
        batched, scalar = self._slices_vs_marginal(marginal, membership)
        assert list(batched) == scalar

    def test_empty_slice_returns_one(self):
        member_sorted = np.zeros((1, 5), dtype=bool)
        assert ks_statistic_batch(member_sorted)[0] == 1.0

    def test_full_slice_is_zero(self):
        member_sorted = np.ones((1, 8), dtype=bool)
        assert ks_statistic_batch(member_sorted)[0] == 0.0

    def test_p_values_bit_identical_to_ks_test(self):
        gen = np.random.default_rng(9)
        marginal = gen.normal(size=40)
        membership = gen.random((6, 40)) < 0.5
        membership[:, :2] = True
        order = np.argsort(marginal, kind="stable")
        statistic = ks_statistic_batch(
            membership[:, order], tie_run_ends(marginal[order])
        )
        counts = membership.sum(axis=1)
        p = ks_p_values(statistic, counts, marginal.shape[0])
        for b in range(membership.shape[0]):
            ref = ks_test(marginal[membership[b]], marginal)
            assert statistic[b] == ref.statistic
            assert p[b] == ref.p_value


class TestTieRunEnds:
    def test_marks_last_index_of_each_run(self):
        mask = tie_run_ends(np.array([1.0, 1.0, 2.0, 3.0, 3.0, 3.0]))
        assert list(mask) == [False, True, True, False, False, True]

    def test_distinct_values_all_true(self):
        assert tie_run_ends(np.array([1.0, 2.0, 3.0])).all()

    def test_empty(self):
        assert tie_run_ends(np.array([])).shape == (0,)
