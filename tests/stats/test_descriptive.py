"""Unit tests for repro.stats.descriptive."""

import numpy as np
import pytest

from repro.stats.descriptive import sample_mean, sample_std, sample_var


class TestDescriptive:
    def test_mean(self):
        assert sample_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_var_is_unbiased(self):
        x = [1.0, 2.0, 3.0]
        assert sample_var(x) == pytest.approx(np.var(x, ddof=1))

    def test_var_single_observation(self):
        assert sample_var([3.0]) == 0.0

    def test_std_is_sqrt_var(self, rng):
        x = rng.normal(size=30)
        assert sample_std(x) == pytest.approx(np.sqrt(sample_var(x)))
