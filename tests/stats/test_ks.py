"""Unit tests for repro.stats.ks (scipy as the oracle)."""

import numpy as np
import pytest
import scipy.stats as ss

from repro.stats.ks import ks_statistic, ks_test


class TestStatistic:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scipy(self, seed):
        gen = np.random.default_rng(seed)
        a = gen.normal(size=gen.integers(10, 80))
        b = gen.normal(0.3, 1.4, size=gen.integers(10, 80))
        assert ks_statistic(a, b) == pytest.approx(
            ss.ks_2samp(a, b).statistic, abs=1e-12
        )

    def test_with_ties(self):
        a = np.array([0.0, 0.0, 1.0, 1.0])
        b = np.array([0.0, 1.0, 1.0, 1.0])
        assert ks_statistic(a, b) == pytest.approx(
            ss.ks_2samp(a, b).statistic, abs=1e-12
        )

    def test_identical_samples(self):
        a = np.array([1.0, 2.0, 3.0])
        assert ks_statistic(a, a) == 0.0

    def test_disjoint_samples(self):
        assert ks_statistic([0.0, 1.0], [5.0, 6.0]) == 1.0

    def test_bounds(self, rng):
        a, b = rng.normal(size=30), rng.normal(size=40)
        assert 0.0 <= ks_statistic(a, b) <= 1.0


class TestPValue:
    def test_close_to_scipy_asymptotic(self, rng):
        a = rng.normal(size=200)
        b = rng.normal(0.1, 1, size=180)
        mine = ks_test(a, b)
        ref = ss.ks_2samp(a, b, method="asymp")
        # Different asymptotic approximations; agree loosely.
        assert mine.p_value == pytest.approx(ref.pvalue, abs=0.05)

    def test_identical_high_pvalue(self, rng):
        a = rng.normal(size=100)
        assert ks_test(a, a).p_value == pytest.approx(1.0, abs=1e-6)

    def test_disjoint_low_pvalue(self, rng):
        a = rng.normal(0, 0.1, size=100)
        b = rng.normal(10, 0.1, size=100)
        assert ks_test(a, b).p_value < 1e-6

    def test_contrast_complements_pvalue(self, rng):
        a = rng.normal(size=50)
        b = rng.normal(2, 1, size=50)
        result = ks_test(a, b)
        assert result.contrast == pytest.approx(1.0 - result.p_value)
