"""Unit tests for repro.stats.special (scipy as the oracle)."""

import numpy as np
import pytest
import scipy.special as sp
import scipy.stats as ss

from repro.exceptions import ValidationError
from repro.stats.special import (
    kolmogorov_sf,
    log_beta,
    regularized_incomplete_beta,
    student_t_sf,
)


class TestLogBeta:
    @pytest.mark.parametrize("a,b", [(1, 1), (0.5, 0.5), (3, 7), (100, 0.1)])
    def test_matches_scipy(self, a, b):
        assert log_beta(a, b) == pytest.approx(sp.betaln(a, b), rel=1e-12)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            log_beta(0, 1)


class TestIncompleteBeta:
    @pytest.mark.parametrize("a,b", [(0.5, 0.5), (2, 3), (10, 1), (7.5, 0.5)])
    @pytest.mark.parametrize("x", [0.0, 0.01, 0.3, 0.5, 0.7, 0.99, 1.0])
    def test_matches_scipy(self, a, b, x):
        assert regularized_incomplete_beta(a, b, x) == pytest.approx(
            sp.betainc(a, b, x), abs=1e-12
        )

    def test_monotone_in_x(self):
        values = [regularized_incomplete_beta(2, 5, x) for x in np.linspace(0, 1, 20)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_rejects_bad_x(self):
        with pytest.raises(ValidationError):
            regularized_incomplete_beta(1, 1, 1.5)

    def test_rejects_bad_ab(self):
        with pytest.raises(ValidationError):
            regularized_incomplete_beta(-1, 1, 0.5)


class TestStudentTSf:
    @pytest.mark.parametrize("t", [-3.2, -1.0, 0.0, 0.5, 2.1, 10.0])
    @pytest.mark.parametrize("df", [1, 2.5, 13.7, 100])
    def test_two_sided_matches_scipy(self, t, df):
        assert student_t_sf(t, df) == pytest.approx(
            2 * ss.t.sf(abs(t), df), abs=1e-12
        )

    @pytest.mark.parametrize("t", [-2.0, 0.0, 1.5])
    def test_one_sided_matches_scipy(self, t):
        assert student_t_sf(t, 9, two_sided=False) == pytest.approx(
            ss.t.sf(t, 9), abs=1e-12
        )

    def test_infinite_statistic(self):
        assert student_t_sf(float("inf"), 5) == 0.0

    def test_nan_statistic(self):
        assert np.isnan(student_t_sf(float("nan"), 5))

    def test_rejects_bad_df(self):
        with pytest.raises(ValidationError):
            student_t_sf(1.0, 0)


class TestKolmogorovSf:
    @pytest.mark.parametrize("x", [0.3, 0.5, 0.8, 1.0, 1.5, 2.0])
    def test_matches_scipy(self, x):
        assert kolmogorov_sf(x) == pytest.approx(ss.kstwobign.sf(x), abs=1e-10)

    def test_nonpositive_is_one(self):
        assert kolmogorov_sf(0.0) == 1.0
        assert kolmogorov_sf(-1.0) == 1.0

    def test_large_x_is_zero(self):
        assert kolmogorov_sf(10.0) == pytest.approx(0.0, abs=1e-12)

    def test_in_unit_interval(self):
        for x in np.linspace(0.01, 3, 50):
            assert 0.0 <= kolmogorov_sf(x) <= 1.0
