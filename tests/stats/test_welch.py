"""Unit tests for repro.stats.welch (scipy as the oracle)."""

import math

import numpy as np
import pytest
import scipy.stats as ss

from repro.exceptions import ValidationError
from repro.stats.welch import welch_statistic, welch_t_test


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(5))
    def test_statistic_and_pvalue(self, seed):
        gen = np.random.default_rng(seed)
        a = gen.normal(0, 1, size=gen.integers(5, 50))
        b = gen.normal(gen.uniform(-1, 1), gen.uniform(0.5, 3), size=gen.integers(5, 50))
        mine = welch_t_test(a, b)
        ref = ss.ttest_ind(a, b, equal_var=False)
        assert mine.statistic == pytest.approx(ref.statistic, rel=1e-10)
        assert mine.p_value == pytest.approx(ref.pvalue, rel=1e-8)

    def test_df_welch_satterthwaite(self):
        gen = np.random.default_rng(1)
        a, b = gen.normal(size=20), gen.normal(0, 3, size=12)
        _, df = welch_statistic(a, b)
        ref = ss.ttest_ind(a, b, equal_var=False)
        assert df == pytest.approx(ref.df, rel=1e-10)


class TestDegenerateCases:
    def test_identical_constant_samples(self):
        result = welch_t_test([1.0, 1.0, 1.0], [1.0, 1.0])
        assert math.isnan(result.statistic)
        assert result.p_value == 1.0
        assert result.discrepancy == 0.0

    def test_different_constant_samples(self):
        result = welch_t_test([1.0, 1.0], [2.0, 2.0])
        assert math.isinf(result.statistic)
        assert result.p_value == 0.0
        assert result.discrepancy == math.inf

    def test_one_constant_sample(self):
        result = welch_t_test([1.0, 1.0, 1.0], [0.0, 2.0, 4.0])
        assert math.isfinite(result.statistic)
        assert 0.0 <= result.p_value <= 1.0

    def test_sign_of_statistic(self):
        assert welch_t_test([5.0, 6.0], [0.0, 1.0]).statistic > 0
        assert welch_t_test([0.0, 1.0], [5.0, 6.0]).statistic < 0

    def test_discrepancy_is_abs(self):
        result = welch_t_test([0.0, 1.0], [5.0, 6.0])
        assert result.discrepancy == pytest.approx(abs(result.statistic))

    def test_rejects_tiny_samples(self):
        with pytest.raises(ValidationError):
            welch_t_test([1.0], [1.0, 2.0])
