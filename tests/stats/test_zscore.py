"""Unit tests for repro.stats.zscore."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.zscore import zscore_of, zscores


class TestZscores:
    def test_zero_mean_unit_std(self, rng):
        z = zscores(rng.normal(3, 2, size=500))
        assert z.mean() == pytest.approx(0.0, abs=1e-12)
        assert z.std() == pytest.approx(1.0, abs=1e-12)

    def test_constant_vector_is_zero(self):
        assert (zscores([5.0, 5.0, 5.0]) == 0.0).all()

    def test_preserves_order(self, rng):
        x = rng.normal(size=50)
        assert (np.argsort(zscores(x)) == np.argsort(x)).all()

    def test_affine_invariance(self, rng):
        x = rng.normal(size=50)
        assert np.allclose(zscores(x), zscores(3.0 * x + 7.0))

    def test_population_variance_convention(self):
        # Matches the paper's formula with Var over the full population.
        x = np.array([0.0, 1.0])
        assert zscores(x)[1] == pytest.approx(1.0)  # std = 0.5 -> (1-0.5)/0.5


class TestZscoreOf:
    def test_matches_full_vector(self, rng):
        x = rng.normal(size=40)
        for i in (0, 7, 39):
            assert zscore_of(x, i) == pytest.approx(zscores(x)[i])

    def test_constant_returns_zero(self):
        assert zscore_of([2.0, 2.0, 2.0], 1) == 0.0

    def test_index_out_of_range(self):
        with pytest.raises(ValidationError, match="out of range"):
            zscore_of([1.0, 2.0], 5)
