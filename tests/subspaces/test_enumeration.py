"""Unit tests for repro.subspaces.enumeration."""

import math

import pytest

from repro.exceptions import ValidationError
from repro.subspaces.enumeration import (
    all_subspaces,
    count_subspaces,
    grow_by_one,
    grow_with_features,
    random_subspaces,
    top_k,
)
from repro.subspaces.subspace import Subspace


class TestAllSubspaces:
    def test_count_matches_binomial(self):
        subs = list(all_subspaces(6, 2))
        assert len(subs) == math.comb(6, 2)
        assert len(set(subs)) == len(subs)

    def test_lexicographic_order(self):
        subs = list(all_subspaces(4, 2))
        assert subs == sorted(subs)

    def test_dimensionality_larger_than_features(self):
        assert list(all_subspaces(3, 4)) == []

    def test_full_dimensionality(self):
        assert list(all_subspaces(3, 3)) == [Subspace([0, 1, 2])]


class TestCountSubspaces:
    @pytest.mark.parametrize("d,m", [(5, 2), (10, 3), (23, 4), (100, 2)])
    def test_binomial(self, d, m):
        assert count_subspaces(d, m) == math.comb(d, m)

    def test_zero_when_too_wide(self):
        assert count_subspaces(3, 5) == 0


class TestGrowByOne:
    def test_grows_every_seed_by_every_missing_feature(self):
        grown = grow_by_one([Subspace([0, 1])], 4)
        assert grown == [Subspace([0, 1, 2]), Subspace([0, 1, 3])]

    def test_deduplicates_across_seeds(self):
        grown = grow_by_one([Subspace([0]), Subspace([1])], 2)
        assert grown == [Subspace([0, 1])]

    def test_validates_range(self):
        from repro.exceptions import SubspaceError

        with pytest.raises(SubspaceError):
            grow_by_one([Subspace([5])], 3)


class TestGrowWithFeatures:
    def test_cartesian_growth(self):
        grown = grow_with_features([Subspace([0])], [1, 2])
        assert grown == [Subspace([0, 1]), Subspace([0, 2])]

    def test_skips_contained_features(self):
        grown = grow_with_features([Subspace([0, 1])], [0, 1])
        assert grown == []


class TestRandomSubspaces:
    def test_count_and_dimensionality(self):
        subs = random_subspaces(10, 4, 25, seed=0)
        assert len(subs) == 25
        assert all(s.dimensionality == 4 for s in subs)

    def test_deterministic(self):
        assert random_subspaces(8, 3, 10, seed=5) == random_subspaces(
            8, 3, 10, seed=5
        )

    def test_different_seeds_differ(self):
        a = random_subspaces(12, 5, 20, seed=1)
        b = random_subspaces(12, 5, 20, seed=2)
        assert a != b

    def test_rejects_impossible_dimensionality(self):
        with pytest.raises(ValidationError):
            random_subspaces(3, 4, 5)


class TestTopK:
    def test_sorted_descending(self):
        scored = [(Subspace([0]), 0.1), (Subspace([1]), 0.9), (Subspace([2]), 0.5)]
        result = top_k(scored, 2)
        assert [s for s, _ in result] == [Subspace([1]), Subspace([2])]

    def test_ties_broken_lexicographically(self):
        scored = [(Subspace([2]), 1.0), (Subspace([0]), 1.0), (Subspace([1]), 1.0)]
        result = top_k(scored, 3)
        assert [tuple(s) for s, _ in result] == [(0,), (1,), (2,)]

    def test_nan_sorts_last(self):
        scored = [(Subspace([0]), float("nan")), (Subspace([1]), -5.0)]
        result = top_k(scored, 2)
        assert result[0][0] == Subspace([1])

    def test_k_exceeds_length(self):
        scored = [(Subspace([0]), 1.0)]
        assert len(top_k(scored, 10)) == 1
