"""Unit tests for repro.subspaces.scorer.SubspaceScorer."""

import numpy as np
import pytest

from repro.detectors import LOF, KNNDetector
from repro.exceptions import ValidationError
from repro.stats.zscore import zscores
from repro.subspaces import SubspaceScorer


@pytest.fixture()
def scorer(subspace_outlier_data) -> SubspaceScorer:
    X, _, _ = subspace_outlier_data
    return SubspaceScorer(X, LOF(k=10))


class TestCaching:
    def test_second_lookup_is_cached(self, scorer):
        first = scorer.scores((0, 1))
        assert scorer.n_evaluations == 1
        second = scorer.scores((1, 0))  # same subspace, different order
        assert scorer.n_evaluations == 1
        assert first is second

    def test_distinct_subspaces_evaluated(self, scorer):
        scorer.scores((0, 1))
        scorer.scores((0, 2))
        assert scorer.n_evaluations == 2

    def test_hit_rate(self, scorer):
        scorer.scores((0, 1))
        scorer.scores((0, 1))
        assert scorer.cache_hit_rate == pytest.approx(0.5)

    def test_clear_cache(self, scorer):
        scorer.scores((0, 1))
        scorer.clear_cache()
        assert scorer.n_evaluations == 0
        scorer.scores((0, 1))
        assert scorer.n_evaluations == 1

    def test_eviction_under_budget(self, subspace_outlier_data):
        X, _, _ = subspace_outlier_data
        tiny = SubspaceScorer(X, LOF(k=5), max_cache_bytes=2 * X.shape[0] * 8)
        for f in range(5):
            tiny.scores((f,))
        assert tiny.n_evaluations == 5
        tiny.scores((0,))  # long evicted
        assert tiny.n_evaluations == 6


class TestScores:
    def test_matches_direct_detector_call(self, subspace_outlier_data):
        X, _, _ = subspace_outlier_data
        scorer = SubspaceScorer(X, LOF(k=10))
        expected = LOF(k=10).score(X[:, [2, 4]])
        assert np.allclose(scorer.scores((2, 4)), expected)

    def test_zscores_match_stats_module(self, scorer):
        raw = scorer.scores((0, 1))
        assert np.allclose(scorer.zscores((0, 1)), zscores(raw))

    def test_point_zscore_of_outlier_is_high(self, subspace_outlier_data):
        X, point, subspace = subspace_outlier_data
        scorer = SubspaceScorer(X, LOF(k=10))
        assert scorer.point_zscore(subspace, point) > 3.0

    def test_point_zscore_constant_scores(self):
        # A detector that returns constants: z-score defined as 0.
        X = np.ones((10, 2)) * np.arange(10)[:, None]
        scorer = SubspaceScorer(X, KNNDetector(k=1))
        # equally spaced points give constant kth distances
        assert scorer.point_zscore((0,), 3) == 0.0

    def test_points_zscores(self, scorer):
        z = scorer.points_zscores((0, 1), [0, 3, 5])
        full = scorer.zscores((0, 1))
        assert np.allclose(z, full[[0, 3, 5]])


class TestValidation:
    def test_rejects_non_detector(self, subspace_outlier_data):
        X, _, _ = subspace_outlier_data
        with pytest.raises(ValidationError, match="Detector"):
            SubspaceScorer(X, detector=lambda x: x)

    def test_rejects_out_of_range_subspace(self, scorer):
        from repro.exceptions import SubspaceError

        with pytest.raises(SubspaceError):
            scorer.scores((99,))

    def test_rejects_out_of_range_point(self, scorer):
        with pytest.raises(ValidationError, match="point index"):
            scorer.point_score((0,), 10_000)

    def test_detectors_do_not_share_cache_entries(self, subspace_outlier_data):
        X, _, _ = subspace_outlier_data
        a = SubspaceScorer(X, LOF(k=5))
        b = SubspaceScorer(X, LOF(k=20))
        assert not np.allclose(a.scores((0, 1)), b.scores((0, 1)))


class TestBatchScoring:
    def test_scores_many_matches_scalar(self, scorer):
        subspaces = [(0, 1), (2, 4), (1, 3)]
        batch = scorer.scores_many(subspaces)
        assert len(batch) == 3
        for subspace, vector in zip(subspaces, batch):
            assert vector is scorer.scores(subspace)

    def test_scores_many_counts_duplicates_as_hits(self, scorer):
        # A batch with repeats must behave like the equivalent scalar
        # lookup loop: one evaluation per distinct subspace, the rest hits.
        batch = scorer.scores_many([(0, 1), (1, 0), (0, 1), (2, 3)])
        assert scorer.n_evaluations == 2
        assert batch[0] is batch[1] and batch[1] is batch[2]
        assert scorer._cache.hits == 2

    def test_scores_many_mixed_hits_and_misses(self, scorer):
        scorer.scores((0, 1))
        scorer.scores_many([(0, 1), (2, 4)])
        assert scorer.n_evaluations == 2

    def test_scores_many_empty(self, scorer):
        assert scorer.scores_many([]) == []

    def test_cached_vectors_are_read_only(self, scorer):
        vector = scorer.scores((0, 1))
        with pytest.raises(ValueError):
            vector[0] = 123.0
        batch = scorer.scores_many([(2, 4)])
        with pytest.raises(ValueError):
            batch[0][:] = 0.0

    def test_zscores_many(self, scorer):
        subspaces = [(0, 1), (2, 4)]
        batch = scorer.zscores_many(subspaces)
        for subspace, z in zip(subspaces, batch):
            assert np.allclose(z, scorer.zscores(subspace))

    def test_point_zscores_many(self, scorer):
        subspaces = [(0, 1), (2, 4), (3,)]
        z = scorer.point_zscores_many(subspaces, 0)
        assert z.shape == (3,)
        for value, subspace in zip(z, subspaces):
            assert value == pytest.approx(scorer.point_zscore(subspace, 0))

    def test_points_zscores_many(self, scorer):
        subspaces = [(0, 1), (2, 4)]
        points = [0, 3, 5]
        z = scorer.points_zscores_many(subspaces, points)
        assert z.shape == (2, 3)
        for row, subspace in zip(z, subspaces):
            assert np.allclose(row, scorer.points_zscores(subspace, points))

    def test_batch_validation_happens_before_any_scoring(self, scorer):
        from repro.exceptions import SubspaceError

        with pytest.raises(SubspaceError):
            scorer.scores_many([(0, 1), (99,)])
        # The valid prefix must not have been evaluated.
        assert scorer.n_evaluations == 0


class TestBackendDispatch:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_backend_batch_matches_serial(self, subspace_outlier_data, backend):
        from repro.exec import resolve_backend

        X, _, _ = subspace_outlier_data
        reference = SubspaceScorer(X, LOF(k=10))
        subject = SubspaceScorer(
            X, LOF(k=10), backend=resolve_backend(backend, n_jobs=2)
        )
        subspaces = [(0, 1), (2, 4), (1, 3), (0, 5)]
        expected = reference.scores_many(subspaces)
        got = subject.scores_many(subspaces)
        subject.close()
        for e, g in zip(expected, got):
            assert e.tobytes() == g.tobytes()

    def test_backend_property_and_close(self, subspace_outlier_data):
        from repro.exec import ThreadBackend

        X, _, _ = subspace_outlier_data
        scorer = SubspaceScorer(X, LOF(k=10), backend=ThreadBackend(n_jobs=2))
        assert scorer.backend.name == "thread"
        scorer.scores_many([(0, 1)])
        scorer.close()
