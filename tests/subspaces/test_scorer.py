"""Unit tests for repro.subspaces.scorer.SubspaceScorer."""

import numpy as np
import pytest

from repro.detectors import LOF, KNNDetector
from repro.exceptions import ValidationError
from repro.stats.zscore import zscores
from repro.subspaces import SubspaceScorer


@pytest.fixture()
def scorer(subspace_outlier_data) -> SubspaceScorer:
    X, _, _ = subspace_outlier_data
    return SubspaceScorer(X, LOF(k=10))


class TestCaching:
    def test_second_lookup_is_cached(self, scorer):
        first = scorer.scores((0, 1))
        assert scorer.n_evaluations == 1
        second = scorer.scores((1, 0))  # same subspace, different order
        assert scorer.n_evaluations == 1
        assert first is second

    def test_distinct_subspaces_evaluated(self, scorer):
        scorer.scores((0, 1))
        scorer.scores((0, 2))
        assert scorer.n_evaluations == 2

    def test_hit_rate(self, scorer):
        scorer.scores((0, 1))
        scorer.scores((0, 1))
        assert scorer.cache_hit_rate == pytest.approx(0.5)

    def test_clear_cache(self, scorer):
        scorer.scores((0, 1))
        scorer.clear_cache()
        assert scorer.n_evaluations == 0
        scorer.scores((0, 1))
        assert scorer.n_evaluations == 1

    def test_eviction_under_budget(self, subspace_outlier_data):
        X, _, _ = subspace_outlier_data
        tiny = SubspaceScorer(X, LOF(k=5), max_cache_bytes=2 * X.shape[0] * 8)
        for f in range(5):
            tiny.scores((f,))
        assert tiny.n_evaluations == 5
        tiny.scores((0,))  # long evicted
        assert tiny.n_evaluations == 6


class TestScores:
    def test_matches_direct_detector_call(self, subspace_outlier_data):
        X, _, _ = subspace_outlier_data
        scorer = SubspaceScorer(X, LOF(k=10))
        expected = LOF(k=10).score(X[:, [2, 4]])
        assert np.allclose(scorer.scores((2, 4)), expected)

    def test_zscores_match_stats_module(self, scorer):
        raw = scorer.scores((0, 1))
        assert np.allclose(scorer.zscores((0, 1)), zscores(raw))

    def test_point_zscore_of_outlier_is_high(self, subspace_outlier_data):
        X, point, subspace = subspace_outlier_data
        scorer = SubspaceScorer(X, LOF(k=10))
        assert scorer.point_zscore(subspace, point) > 3.0

    def test_point_zscore_constant_scores(self):
        # A detector that returns constants: z-score defined as 0.
        X = np.ones((10, 2)) * np.arange(10)[:, None]
        scorer = SubspaceScorer(X, KNNDetector(k=1))
        # equally spaced points give constant kth distances
        assert scorer.point_zscore((0,), 3) == 0.0

    def test_points_zscores(self, scorer):
        z = scorer.points_zscores((0, 1), [0, 3, 5])
        full = scorer.zscores((0, 1))
        assert np.allclose(z, full[[0, 3, 5]])


class TestValidation:
    def test_rejects_non_detector(self, subspace_outlier_data):
        X, _, _ = subspace_outlier_data
        with pytest.raises(ValidationError, match="Detector"):
            SubspaceScorer(X, detector=lambda x: x)

    def test_rejects_out_of_range_subspace(self, scorer):
        from repro.exceptions import SubspaceError

        with pytest.raises(SubspaceError):
            scorer.scores((99,))

    def test_rejects_out_of_range_point(self, scorer):
        with pytest.raises(ValidationError, match="point index"):
            scorer.point_score((0,), 10_000)

    def test_detectors_do_not_share_cache_entries(self, subspace_outlier_data):
        X, _, _ = subspace_outlier_data
        a = SubspaceScorer(X, LOF(k=5))
        b = SubspaceScorer(X, LOF(k=20))
        assert not np.allclose(a.scores((0, 1)), b.scores((0, 1)))
