"""Unit tests for repro.subspaces.subspace."""

import numpy as np
import pytest

from repro.exceptions import SubspaceError
from repro.subspaces.subspace import Subspace, as_subspace, project


class TestConstruction:
    def test_sorted(self):
        assert tuple(Subspace([3, 1, 2])) == (1, 2, 3)

    def test_equality_with_plain_tuple(self):
        assert Subspace([1, 3]) == (1, 3)
        assert hash(Subspace([1, 3])) == hash((1, 3))

    def test_usable_in_sets(self):
        assert len({Subspace([1, 2]), Subspace([2, 1]), (1, 2)}) == 1

    def test_rejects_empty(self):
        with pytest.raises(SubspaceError, match="at least one"):
            Subspace([])

    def test_rejects_duplicates(self):
        with pytest.raises(SubspaceError, match="duplicate"):
            Subspace([1, 1])

    def test_rejects_negative(self):
        with pytest.raises(SubspaceError, match="non-negative"):
            Subspace([-1, 2])

    def test_rejects_non_integers(self):
        with pytest.raises(SubspaceError):
            Subspace(["a"])

    def test_accepts_numpy_ints(self):
        assert Subspace(np.array([2, 0])) == (0, 2)


class TestOperations:
    def test_dimensionality(self):
        assert Subspace([4, 7, 9]).dimensionality == 3

    def test_union(self):
        assert Subspace([1, 2]).union([2, 3]) == (1, 2, 3)

    def test_contains(self):
        assert Subspace([1, 2, 3]).contains([1, 3])
        assert not Subspace([1, 2]).contains([3])

    def test_overlaps(self):
        assert Subspace([1, 2]).overlaps([2, 5])
        assert not Subspace([1, 2]).overlaps([3, 4])

    def test_validate_against(self):
        Subspace([0, 4]).validate_against(5)
        with pytest.raises(SubspaceError, match="out of range"):
            Subspace([0, 5]).validate_against(5)

    def test_repr(self):
        assert repr(Subspace([2, 1])) == "Subspace(1, 2)"


class TestAsSubspace:
    def test_passthrough(self):
        s = Subspace([1])
        assert as_subspace(s) is s

    def test_from_int(self):
        assert as_subspace(3) == (3,)

    def test_from_iterables(self):
        assert as_subspace({2, 0}) == (0, 2)
        assert as_subspace((1, 4)) == (1, 4)

    def test_rejects_garbage(self):
        with pytest.raises(SubspaceError):
            as_subspace(object())


class TestProject:
    def test_selects_columns(self, rng):
        X = rng.normal(size=(10, 5))
        P = project(X, [3, 1])
        assert P.shape == (10, 2)
        assert np.allclose(P, X[:, [1, 3]])  # sorted order

    def test_contiguous_output(self, rng):
        assert project(rng.normal(size=(5, 4)), [0, 2]).flags["C_CONTIGUOUS"]

    def test_out_of_range(self, rng):
        with pytest.raises(SubspaceError):
            project(rng.normal(size=(5, 3)), [4])

    def test_rejects_1d(self):
        with pytest.raises(SubspaceError):
            project(np.arange(5.0), [0])
