"""Unit tests for tools/bench_sentinel.py (the perf regression gate)."""

import json
import os
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.abspath(__file__ + "/.."))
SENTINEL = os.path.join(REPO_ROOT, "tools", "bench_sentinel.py")

sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
try:
    import bench_sentinel
finally:
    sys.path.pop(0)


BASELINE = [
    {"op": "scores_many (serial)", "n": 400, "d": 20,
     "n_subspaces": 190, "wall_time_s": 0.4},
    {"op": "beam_lof_grid speedup", "n": 1000, "d": 12,
     "speedup": 3.3, "ranked_identical": True},
]


class TestCompare:
    def test_identical_records_pass(self):
        regressions, notes = bench_sentinel.compare(BASELINE, BASELINE)
        assert regressions == []
        assert len(notes) == 2

    def test_noise_within_tolerance_passes(self):
        fresh = [dict(BASELINE[0], wall_time_s=0.55)]
        regressions, _ = bench_sentinel.compare(fresh, BASELINE)
        assert regressions == []

    def test_twice_slower_fails(self):
        fresh = [dict(BASELINE[0], wall_time_s=0.8)]
        regressions, _ = bench_sentinel.compare(fresh, BASELINE)
        assert len(regressions) == 1
        assert "wall time" in regressions[0]

    def test_speedup_collapse_fails(self):
        fresh = [dict(BASELINE[1], speedup=1.1)]
        regressions, _ = bench_sentinel.compare(fresh, BASELINE)
        assert len(regressions) == 1
        assert "speedup" in regressions[0]

    def test_min_speedup_floor(self):
        # Within relative tolerance of the baseline, but below the
        # absolute floor the caller demanded.
        fresh = [dict(BASELINE[1], speedup=2.4)]
        regressions, _ = bench_sentinel.compare(fresh, BASELINE)
        assert regressions == []
        regressions, _ = bench_sentinel.compare(
            fresh, BASELINE, min_speedup=2.5
        )
        assert len(regressions) == 1

    def test_ranked_divergence_is_a_hard_failure(self):
        fresh = [dict(BASELINE[1], ranked_identical=False)]
        regressions, _ = bench_sentinel.compare(fresh, BASELINE)
        assert len(regressions) == 1
        assert "correctness" in regressions[0]

    def test_unmatched_op_is_skipped_with_a_note(self):
        fresh = [{"op": "brand_new_bench", "wall_time_s": 99.0}]
        regressions, notes = bench_sentinel.compare(fresh, BASELINE)
        assert regressions == []
        assert any("no matching baseline" in n for n in notes)

    def test_changed_workload_shape_is_not_compared(self):
        # Same op name at a different scale must not be judged against
        # the old scale's wall time.
        fresh = [dict(BASELINE[0], n=4000, wall_time_s=4.0)]
        regressions, notes = bench_sentinel.compare(fresh, BASELINE)
        assert regressions == []
        assert any("no matching baseline" in n for n in notes)

    def test_best_baseline_wins_when_several_match(self):
        baseline = [
            dict(BASELINE[0], wall_time_s=0.4),
            dict(BASELINE[0], wall_time_s=1.0),
        ]
        fresh = [dict(BASELINE[0], wall_time_s=0.7)]
        regressions, _ = bench_sentinel.compare(fresh, baseline)
        assert len(regressions) == 1  # gated on the 0.4 s high-water mark

    def test_rejects_sub_unit_tolerance(self):
        with pytest.raises(ValueError):
            bench_sentinel.compare(BASELINE, BASELINE, tolerance=0.5)


SERVE_BASELINE = [
    {"op": "serve warm engine", "n_requests": 72, "clients": 4,
     "profile": "smoke", "quick": False, "qps": 50.0, "p50_ms": 40.0,
     "p95_ms": 300.0, "p99_ms": 400.0, "wall_time_s": 1.4,
     "byte_identical": True},
    {"op": "serve speedup", "n_requests": 72, "clients": 4,
     "profile": "smoke", "quick": False, "speedup": 6.0,
     "byte_identical": True},
]


class TestLatencyRecords:
    """Gates for bench_serve-style records: qps floor + percentile ceilings."""

    def test_identical_latency_records_pass(self):
        regressions, notes = bench_sentinel.compare(
            SERVE_BASELINE, SERVE_BASELINE
        )
        assert regressions == []
        # wall + qps + p50 + p95 for the warm record, speedup for the other.
        assert len(notes) == 5

    def test_throughput_collapse_fails(self):
        fresh = [dict(SERVE_BASELINE[0], qps=20.0)]
        regressions, _ = bench_sentinel.compare(fresh, SERVE_BASELINE)
        assert any("qps" in r for r in regressions)

    def test_throughput_within_tolerance_passes(self):
        fresh = [dict(SERVE_BASELINE[0], qps=40.0)]
        regressions, _ = bench_sentinel.compare(fresh, SERVE_BASELINE)
        assert not any("qps" in r for r in regressions)

    def test_p50_blowup_fails(self):
        fresh = [dict(SERVE_BASELINE[0], p50_ms=90.0)]
        regressions, _ = bench_sentinel.compare(fresh, SERVE_BASELINE)
        assert any("p50_ms" in r for r in regressions)

    def test_p95_blowup_fails(self):
        fresh = [dict(SERVE_BASELINE[0], p95_ms=700.0)]
        regressions, _ = bench_sentinel.compare(fresh, SERVE_BASELINE)
        assert any("p95_ms" in r for r in regressions)

    def test_p99_is_never_gated(self):
        # The tail of a short run is one sample wide; a 10x p99 alone
        # must not trip the gate.
        fresh = [dict(SERVE_BASELINE[0], p99_ms=4000.0)]
        regressions, _ = bench_sentinel.compare(fresh, SERVE_BASELINE)
        assert regressions == []

    def test_byte_divergence_is_a_hard_failure(self):
        fresh = [dict(SERVE_BASELINE[0], byte_identical=False)]
        regressions, _ = bench_sentinel.compare(fresh, SERVE_BASELINE)
        assert len(regressions) == 1
        assert "byte_identical" in regressions[0]
        assert "correctness" in regressions[0]

    def test_byte_divergence_fails_even_without_baseline(self):
        # Correctness gating must not depend on a matching baseline —
        # a quick-mode record with no committed trajectory still fails.
        fresh = [{"op": "serve warm engine", "quick": True,
                  "byte_identical": False}]
        regressions, _ = bench_sentinel.compare(fresh, [])
        assert len(regressions) == 1

    def test_quick_records_do_not_match_full_scale_baseline(self):
        # A CI --quick run has a different request mix; judging it
        # against the committed full-scale trajectory would be noise.
        fresh = [dict(SERVE_BASELINE[0], n_requests=18, quick=True,
                      qps=5.0, p50_ms=500.0)]
        regressions, notes = bench_sentinel.compare(fresh, SERVE_BASELINE)
        assert regressions == []
        assert any("no matching baseline" in n for n in notes)


class TestCli:
    def run_sentinel(self, *argv):
        return subprocess.run(
            [sys.executable, SENTINEL, *argv],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_passes_on_the_committed_trajectory(self):
        """Acceptance: the gate is green on the repo's own records."""
        for name in ("BENCH_scorer.json", "BENCH_hics.json"):
            path = os.path.join(REPO_ROOT, name)
            proc = self.run_sentinel("--fresh", path)
            assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_fails_on_a_synthetic_2x_slower_run(self, tmp_path):
        """Acceptance: a uniformly 2x-slower run must trip the gate."""
        with open(os.path.join(REPO_ROOT, "BENCH_scorer.json")) as fh:
            records = json.load(fh)
        for record in records:
            if "wall_time_s" in record:
                record["wall_time_s"] *= 2.0
        slow = tmp_path / "BENCH_scorer.json"
        slow.write_text(json.dumps(records))
        proc = self.run_sentinel(
            "--fresh", str(slow),
            "--baseline", os.path.join(REPO_ROOT, "BENCH_scorer.json"),
        )
        assert proc.returncode == 1
        assert "REGRESSION" in proc.stderr

    def test_missing_baseline_skips_gracefully(self, tmp_path):
        fresh = tmp_path / "BENCH_nonexistent_suite.json"
        fresh.write_text("[]")
        proc = self.run_sentinel("--fresh", str(fresh))
        assert proc.returncode == 0
        assert "no baseline" in proc.stdout

    def test_missing_fresh_file_errors(self, tmp_path):
        proc = self.run_sentinel("--fresh", str(tmp_path / "nope.json"))
        assert proc.returncode == 1
