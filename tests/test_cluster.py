"""Unit tests for the k-means clustering substrate."""

import numpy as np
import pytest

from repro.cluster import KMeans, select_n_clusters, silhouette_score
from repro.exceptions import NotFittedError, ValidationError


@pytest.fixture(scope="module")
def three_blobs():
    gen = np.random.default_rng(0)
    return np.vstack(
        [
            gen.normal([0, 0], 0.2, size=(30, 2)),
            gen.normal([6, 0], 0.2, size=(30, 2)),
            gen.normal([0, 6], 0.2, size=(30, 2)),
        ]
    )


class TestKMeans:
    def test_separates_blobs(self, three_blobs):
        labels = KMeans(n_clusters=3, seed=0).fit_predict(three_blobs)
        blocks = [labels[:30], labels[30:60], labels[60:]]
        # each blob uniform, blobs pairwise different
        assert all(len(set(b.tolist())) == 1 for b in blocks)
        assert len({b[0] for b in blocks}) == 3

    def test_deterministic(self, three_blobs):
        a = KMeans(n_clusters=3, seed=5).fit_predict(three_blobs)
        b = KMeans(n_clusters=3, seed=5).fit_predict(three_blobs)
        assert (a == b).all()

    def test_single_cluster(self, three_blobs):
        labels = KMeans(n_clusters=1, seed=0).fit_predict(three_blobs)
        assert (labels == 0).all()

    def test_k_equals_n(self):
        X = np.arange(8.0).reshape(-1, 2)
        labels = KMeans(n_clusters=4, seed=0).fit_predict(X)
        assert len(set(labels.tolist())) == 4

    def test_k_above_n_rejected(self):
        with pytest.raises(ValidationError):
            KMeans(n_clusters=5, seed=0).fit_predict(np.zeros((3, 2)))

    def test_predict_new_points(self, three_blobs):
        model = KMeans(n_clusters=3, seed=0)
        labels = model.fit_predict(three_blobs)
        new = model.predict(np.array([[6.0, 0.1], [0.0, 6.1]]))
        assert new[0] == labels[30]
        assert new[1] == labels[60]

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KMeans(n_clusters=2).predict(np.zeros((2, 2)))

    def test_inertia_recorded(self, three_blobs):
        model = KMeans(n_clusters=3, seed=0)
        model.fit_predict(three_blobs)
        assert model.inertia is not None and model.inertia >= 0.0

    def test_duplicate_points(self):
        X = np.array([[1.0, 1.0]] * 10 + [[5.0, 5.0]] * 10)
        labels = KMeans(n_clusters=2, seed=0).fit_predict(X)
        assert len(set(labels.tolist())) == 2


class TestSilhouette:
    def test_good_clustering_scores_high(self, three_blobs):
        labels = KMeans(n_clusters=3, seed=0).fit_predict(three_blobs)
        assert silhouette_score(three_blobs, labels) > 0.8

    def test_bad_clustering_scores_lower(self, three_blobs):
        good = KMeans(n_clusters=3, seed=0).fit_predict(three_blobs)
        bad = np.arange(90) % 3  # arbitrary striping
        assert silhouette_score(three_blobs, bad) < silhouette_score(
            three_blobs, good
        )

    def test_requires_two_clusters(self, three_blobs):
        with pytest.raises(ValidationError):
            silhouette_score(three_blobs, np.zeros(90))

    def test_singletons_contribute_zero(self):
        X = np.array([[0.0], [0.1], [9.0]])
        labels = np.array([0, 0, 1])
        score = silhouette_score(X, labels)
        assert np.isfinite(score)


class TestSelectNClusters:
    def test_finds_three_blobs(self, three_blobs):
        k, labels = select_n_clusters(three_blobs, max_clusters=6, seed=0)
        assert k == 3
        assert len(set(labels.tolist())) == 3

    def test_structureless_data_returns_one(self, rng):
        X = rng.uniform(size=(60, 2))
        k, labels = select_n_clusters(X, max_clusters=5, seed=0)
        # Uniform noise: no k should strongly beat the rest; accept 1 or a
        # weakly-supported small k, but the labels must be consistent.
        assert 1 <= k <= 5
        assert labels.shape == (60,)

    def test_max_clusters_capped(self):
        X = np.arange(6.0).reshape(-1, 2)
        k, _ = select_n_clusters(X, max_clusters=10, seed=0)
        assert k <= 3
