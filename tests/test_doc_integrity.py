"""Documentation integrity, enforced by the tier-1 suite.

Runs the same checker CI uses (``tools/check_docs.py``): no dead
intra-repo markdown links, and every CLI flag documented in the runbook.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_docs.py")


def test_checker_passes():
    proc = subprocess.run(
        [sys.executable, CHECKER],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, (
        f"doc integrity check failed:\n{proc.stdout}{proc.stderr}"
    )


def test_checker_catches_dead_link(tmp_path, monkeypatch):
    """The checker itself must actually detect a dead link."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](no/such/file.md)\n")
    problems = check_docs.check_links([str(bad)])
    assert any("dead link" in p for p in problems)


def test_checker_catches_dead_anchor(tmp_path):
    sys.path.insert(0, os.path.join(REPO_ROOT, "tools"))
    try:
        import check_docs
    finally:
        sys.path.pop(0)
    target = tmp_path / "target.md"
    target.write_text("# Real Heading\n")
    source = tmp_path / "source.md"
    source.write_text("[ok](target.md#real-heading) [bad](target.md#nope)\n")
    problems = check_docs.check_links([str(source)])
    assert len(problems) == 1 and "dead anchor" in problems[0]
