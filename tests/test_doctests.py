"""Run every docstring example in the library as a test."""

import doctest
import importlib
import pkgutil

import pytest

import repro

_MODULES = sorted(
    module.name
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not module.name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", _MODULES)
def test_docstring_examples(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module_name}"
