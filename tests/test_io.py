"""Tests for dataset/report persistence."""

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.exceptions import ValidationError
from repro.experiments import table1
from repro.io import load_dataset_file, save_dataset, save_report


class TestDatasetRoundTrip:
    def test_bit_identical_round_trip(self, tmp_path, hics_small):
        path = str(tmp_path / "hics14.npz")
        save_dataset(hics_small, path)
        loaded = load_dataset_file(path)
        assert loaded.name == hics_small.name
        assert loaded.kind == hics_small.kind
        assert (loaded.X == hics_small.X).all()
        assert loaded.outliers == hics_small.outliers
        for point in hics_small.ground_truth.points:
            assert loaded.ground_truth.relevant_for(
                point
            ) == hics_small.ground_truth.relevant_for(point)

    def test_metadata_preserved(self, tmp_path, hics_small):
        path = str(tmp_path / "d.npz")
        save_dataset(hics_small, path)
        loaded = load_dataset_file(path)
        assert loaded.metadata["generator"] == "make_hics_dataset"
        assert loaded.metadata["seed"] == 0

    def test_realistic_round_trip(self, tmp_path, breast_small):
        path = str(tmp_path / "b.npz")
        save_dataset(breast_small, path)
        loaded = load_dataset_file(path)
        assert loaded.kind == "full_space"
        assert loaded.describe() == breast_small.describe()

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="no dataset file"):
            load_dataset_file(str(tmp_path / "missing.npz"))

    def test_foreign_npz_rejected(self, tmp_path):
        path = str(tmp_path / "foreign.npz")
        np.savez(path, stuff=np.ones(3))
        with pytest.raises(ValidationError, match="not a repro dataset"):
            load_dataset_file(path)

    def test_rejects_non_dataset(self, tmp_path):
        with pytest.raises(ValidationError):
            save_dataset({"X": np.ones((2, 2))}, str(tmp_path / "x.npz"))


class TestReportPersistence:
    def test_writes_text_and_csv(self, tmp_path):
        report = table1.run("smoke")
        paths = save_report(report, str(tmp_path / "out"))
        assert set(paths) == {"text", "csv"}
        text = open(paths["text"]).read()
        assert "Table 1" in text
        csv_lines = open(paths["csv"]).read().strip().splitlines()
        assert len(csv_lines) == 3

    def test_rejects_non_report(self, tmp_path):
        with pytest.raises(ValidationError):
            save_report({"rows": []}, str(tmp_path))
