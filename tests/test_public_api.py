"""Public API surface tests: the names README and docs promise exist."""

import pytest

import repro


class TestLazyTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "name",
        [
            # detectors
            "LOF",
            "FastABOD",
            "IsolationForest",
            "KNNDetector",
            "MahalanobisDetector",
            "LODA",
            # explainers
            "Beam",
            "RefOut",
            "LookOut",
            "HiCS",
            "SurrogateExplainer",
            "GroupExplainer",
            "RankedSubspaces",
            # datasets
            "load_dataset",
            "make_hics_dataset",
            "make_realistic_dataset",
            "GroundTruth",
            "Dataset",
            # metrics
            "mean_average_precision",
            "mean_recall",
            "average_precision",
            "roc_auc",
            # pipeline
            "ExplanationPipeline",
            "GridRunner",
            "ResultTable",
            # subspaces
            "Subspace",
            "SubspaceScorer",
        ],
    )
    def test_symbol_reachable_from_top_level(self, name):
        assert getattr(repro, name) is not None

    def test_exceptions_importable_eagerly(self):
        assert issubclass(repro.ValidationError, repro.ReproError)
        assert issubclass(repro.NotFittedError, repro.ReproError)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_symbol


class TestSubpackageAll:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.detectors",
            "repro.explainers",
            "repro.datasets",
            "repro.metrics",
            "repro.pipeline",
            "repro.subspaces",
            "repro.stats",
            "repro.neighbors",
            "repro.obs",
            "repro.utils",
            "repro.stream",
            "repro.cluster",
            "repro.surrogate",
            "repro.experiments",
        ],
    )
    def test_all_entries_exist(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_paper_registries(self):
        from repro.detectors import PAPER_DETECTORS
        from repro.explainers import PAPER_EXPLAINERS

        assert set(PAPER_DETECTORS) == {"lof", "fast_abod", "iforest"}
        assert set(PAPER_EXPLAINERS) == {"beam", "refout", "lookout", "hics"}
        for factory in PAPER_EXPLAINERS.values():
            assert factory() is not factory()
