"""Tests for the streaming extension (windowed detection + explanation)."""

import numpy as np
import pytest

from repro.detectors import LOF
from repro.exceptions import ValidationError
from repro.explainers import Beam
from repro.stream import (
    SlidingWindow,
    StreamingDetector,
    StreamingExplainer,
    drifting_stream,
)


class TestSlidingWindow:
    def test_fills_then_evicts_oldest(self):
        window = SlidingWindow(capacity=3, n_features=2)
        for i in range(5):
            window.append([float(i), float(-i)])
        assert len(window) == 3
        assert window.as_matrix()[:, 0].tolist() == [2.0, 3.0, 4.0]

    def test_partial_fill(self):
        window = SlidingWindow(capacity=4, n_features=1)
        window.append([1.0])
        assert len(window) == 1
        assert not window.is_full
        assert window.as_matrix().shape == (1, 1)

    def test_oldest_first_after_wraparound(self):
        window = SlidingWindow(capacity=2, n_features=1)
        for v in (1.0, 2.0, 3.0):
            window.append([v])
        assert window.as_matrix()[:, 0].tolist() == [2.0, 3.0]

    def test_matrix_is_a_readonly_view(self):
        window = SlidingWindow(capacity=2, n_features=1)
        window.append([1.0])
        m = window.as_matrix()
        with pytest.raises(ValueError):
            m[0, 0] = 99.0
        assert window.as_matrix()[0, 0] == 1.0
        # An explicit copy is isolated from later appends.
        snapshot = np.array(window.as_matrix())
        window.append([2.0])
        window.append([3.0])
        assert snapshot.tolist() == [[1.0]]

    def test_as_matrix_is_zero_copy(self):
        # The satellite regression: no O(n*d) materialisation per update.
        # Every view, full or partial, must alias the ring buffer.
        window = SlidingWindow(capacity=64, n_features=8)
        rng = np.random.default_rng(0)
        for _ in range(200):
            window.append(rng.normal(size=8))
            m = window.as_matrix()
            assert m.base is not None
            assert np.shares_memory(m, window._buffer)
            assert not m.flags.writeable
            assert m.flags.c_contiguous

    def test_extend_matches_repeated_append(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(17, 3))
        a = SlidingWindow(capacity=10, n_features=3)
        b = SlidingWindow(capacity=10, n_features=3)
        for row in X:
            a.append(row)
        assert b.extend(X) == 17
        assert a.as_matrix().tolist() == b.as_matrix().tolist()
        assert a.n_seen == b.n_seen == 17

    def test_rejects_wrong_width(self):
        window = SlidingWindow(capacity=2, n_features=2)
        with pytest.raises(ValidationError):
            window.append([1.0])

    def test_clear(self):
        window = SlidingWindow(capacity=2, n_features=1)
        window.append([1.0])
        window.clear()
        assert len(window) == 0
        assert window.n_seen == 1

    def test_empty_matrix(self):
        window = SlidingWindow(capacity=2, n_features=3)
        assert window.as_matrix().shape == (0, 3)


class TestStreamingDetector:
    def test_warmup_scores_zero(self, rng):
        sd = StreamingDetector(LOF(k=5), window_size=20, n_features=2, warmup=10)
        scores = [sd.update(rng.normal(size=2)) for _ in range(9)]
        assert scores == [0.0] * 9
        assert not sd.ready

    def test_flags_obvious_outlier(self, rng):
        sd = StreamingDetector(LOF(k=5), window_size=50, n_features=2)
        for _ in range(50):
            sd.update(rng.normal(0, 0.3, size=2))
        spike = sd.update(np.array([8.0, 8.0]))
        assert spike > 5.0

    def test_score_stream_shape(self, rng):
        sd = StreamingDetector(LOF(k=5), window_size=30, n_features=3)
        scores = sd.score_stream(rng.normal(size=(60, 3)))
        assert scores.shape == (60,)

    def test_rejects_non_detector(self):
        with pytest.raises(ValidationError):
            StreamingDetector("lof", window_size=10, n_features=2)


class TestDriftingStream:
    def test_shapes_and_ground_truth(self):
        X, anomalies = drifting_stream(length=200, n_features=4, anomaly_every=40, seed=0)
        assert X.shape == (200, 4)
        assert [a.index for a in anomalies] == [39, 79, 119, 159, 199]
        assert all(tuple(a.subspace) in {(0, 1), (2, 3)} for a in anomalies)

    def test_values_in_unit_cube(self):
        X, _ = drifting_stream(length=150, n_features=6, seed=1)
        assert X.min() >= 0.0 and X.max() <= 1.0

    def test_deterministic(self):
        a, _ = drifting_stream(length=100, seed=3)
        b, _ = drifting_stream(length=100, seed=3)
        assert np.allclose(a, b)

    def test_pair_structure_holds_for_inliers(self):
        X, anomalies = drifting_stream(length=200, n_features=4, anomaly_every=50, seed=0)
        anomalous = {a.index for a in anomalies}
        inliers = [t for t in range(200) if t not in anomalous]
        residual = np.abs(X[inliers, 1] - (1.0 - X[inliers, 0]))
        # Clipping at the cube boundary can stretch a few residuals.
        assert np.median(residual) < 0.05

    def test_drift_flips_structure(self):
        X, anomalies = drifting_stream(
            length=300, n_features=4, anomaly_every=100, drift_at=150, seed=2
        )
        anomalous = {a.index for a in anomalies}
        post = [t for t in range(160, 300) if t not in anomalous]
        residual = np.abs(X[post, 1] - X[post, 0])
        assert np.median(residual) < 0.05

    def test_rejects_odd_width(self):
        with pytest.raises(ValidationError):
            drifting_stream(n_features=5)

    def test_rejects_bad_drift_index(self):
        with pytest.raises(ValidationError):
            drifting_stream(length=100, drift_at=100)


class TestStreamingExplainer:
    @pytest.fixture(scope="class")
    def run(self):
        X, truth = drifting_stream(
            length=400, n_features=4, anomaly_every=50, seed=0
        )
        detector = StreamingDetector(LOF(k=8), window_size=150, n_features=4)
        monitor = StreamingExplainer(
            detector,
            Beam(beam_width=6, result_size=3),
            threshold=2.5,
            dimensionality=2,
        )
        events = monitor.consume(X)
        return X, truth, events

    def test_detects_majority_of_injected_anomalies(self, run):
        _, truth, events = run
        scored_truth = {a.index for a in truth if a.index >= 150}  # post-warmup
        detected = {e.index for e in events}
        recall = len(scored_truth & detected) / len(scored_truth)
        assert recall >= 0.5

    def test_explanations_name_the_broken_pair(self, run):
        _, truth, events = run
        truth_by_index = {a.index: a.subspace for a in truth}
        hits = [e for e in events if e.index in truth_by_index]
        assert hits, "no injected anomaly was detected"
        correct = sum(
            1 for e in hits if e.explanation.subspaces[0] == truth_by_index[e.index]
        )
        assert correct / len(hits) >= 0.7

    def test_events_carry_trigger_scores(self, run):
        _, _, events = run
        assert all(e.score >= 2.5 for e in events)

    def test_update_returns_event_only_on_anomaly(self):
        gen = np.random.default_rng(12)
        detector = StreamingDetector(LOF(k=5), window_size=40, n_features=2)
        monitor = StreamingExplainer(
            detector, Beam(beam_width=3, result_size=2), threshold=4.0
        )
        for _ in range(40):
            assert monitor.update(gen.normal(0, 0.3, size=2)) is None
        event = monitor.update(np.array([9.0, -9.0]))
        assert event is not None
        assert event.index == 40

    def test_rejects_bad_threshold(self, rng):
        detector = StreamingDetector(LOF(k=5), window_size=10, n_features=2)
        with pytest.raises(ValidationError):
            StreamingExplainer(detector, Beam(), threshold=0.0)

    def test_rejects_summary_explainer(self):
        from repro.explainers import LookOut

        detector = StreamingDetector(LOF(k=5), window_size=10, n_features=2)
        with pytest.raises(ValidationError):
            StreamingExplainer(detector, LookOut())


class TestDriftRecovery:
    def test_drift_spike_then_recovery(self):
        X, truth = drifting_stream(
            length=500, n_features=4, anomaly_every=1000, drift_at=250, seed=1
        )
        detector = StreamingDetector(LOF(k=8), window_size=100, n_features=4)
        scores = detector.score_stream(X)
        # Right after the drift the new concept looks anomalous...
        assert scores[250] > 3.0
        # ...but once the window refills, normality is restored.
        tail = np.abs(scores[400:])
        assert np.median(tail) < 1.5
