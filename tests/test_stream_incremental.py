"""The incremental-streaming byte-identity drill.

Every reuse layer of ``repro.stream`` — provider slides, drift-gated
contrast maintenance, engine chaining — carries the same contract as the
rest of the repo's optimisations: ``REPRO_STREAM_INCREMENTAL=0`` (the
per-window recompute baseline) must reproduce the incremental output
byte for byte, under every execution backend. This module drills that
contract end to end, plus the unit surface of each layer and the
streaming SFE metric.
"""

import numpy as np
import pytest

from repro.detectors import LOF, KNNDetector
from repro.exceptions import ValidationError
from repro.explainers import Beam, HiCS
from repro.explainers.base import RankedSubspaces
from repro.metrics import evaluate_stream, feature_sequence, sfe_length
from repro.neighbors.provider import DistanceProvider
from repro.stream import (
    STREAM_INCREMENTAL_ENV,
    ExplainedAnomaly,
    StreamAnomaly,
    StreamContrastIndex,
    StreamingDetector,
    StreamingExplainer,
    drifting_stream,
)
from repro.subspaces.subspace import Subspace


def _provider(X, **kwargs):
    kwargs.setdefault("max_bytes", 1 << 26)
    kwargs.setdefault("max_compose_dim", X.shape[1])
    kwargs.setdefault("sketch_factor", 0)
    return DistanceProvider(X, **kwargs)


class TestProviderSlide:
    """`DistanceProvider.slide` vs a cold build: bit-identical, cheaper."""

    def test_slid_state_bit_identical_to_cold(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(40, 5))
        new_rows = rng.normal(size=(2, 5))
        full = tuple(range(5))
        warm = _provider(X)
        warm.squared_distances(full)  # warm every block + the composed matrix

        slid = warm.slide(new_rows, n_evict=2, compose=[full])
        cold = _provider(np.vstack([X[2:], new_rows]))
        assert np.array_equal(slid.X, cold.X)
        for f in range(5):
            assert (
                slid.feature_block(f).tobytes()
                == cold.feature_block(f).tobytes()
            )
        assert (
            slid.squared_distances(full).tobytes()
            == cold.squared_distances(full).tobytes()
        )
        # Downstream queries (the detector surface) agree too, including
        # a subspace whose composed matrix was never slid.
        for s in (full, (0, 2), (1, 3, 4)):
            si, sd = slid.kneighbors(s, 5)
            ci, cd = cold.kneighbors(s, 5)
            assert np.array_equal(si, ci)
            assert sd.tobytes() == cd.tobytes()
        stats = slid.stats()
        assert stats["blocks_slid"] == 5
        assert stats["composed_slid"] == 1

    def test_chained_slides_stay_bit_identical(self):
        rng = np.random.default_rng(11)
        X = rng.normal(size=(30, 4))
        stream = rng.normal(size=(6, 4))
        full = (0, 1, 2, 3)
        provider = _provider(X)
        provider.squared_distances(full)
        current = X
        for row in stream:
            provider = provider.slide(row[None, :], n_evict=1, compose=[full])
            current = np.vstack([current[1:], row[None, :]])
        cold = _provider(current)
        assert (
            provider.squared_distances(full).tobytes()
            == cold.squared_distances(full).tobytes()
        )
        for f in range(4):
            assert (
                provider.feature_block(f).tobytes()
                == cold.feature_block(f).tobytes()
            )

    def test_uncached_compose_request_is_skipped_not_fabricated(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        warm = _provider(X)
        warm.feature_block(0)  # blocks only; no composed matrix cached
        slid = warm.slide(X[:1], n_evict=1, compose=[(0, 1, 2)])
        assert slid.stats()["composed_slid"] == 0
        # ... and computing it afterwards still gives canonical bits.
        cold = _provider(np.vstack([X[1:], X[:1]]))
        assert (
            slid.squared_distances((0, 1, 2)).tobytes()
            == cold.squared_distances((0, 1, 2)).tobytes()
        )

    def test_slide_validates_row_width(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        provider = _provider(X)
        with pytest.raises(ValidationError):
            provider.slide(np.zeros((1, 4)))

    def test_full_turnover_equals_cold_everywhere(self):
        X = np.random.default_rng(1).normal(size=(12, 3))
        replacement = np.random.default_rng(2).normal(size=(12, 3))
        provider = _provider(X)
        provider.squared_distances((0, 1, 2))
        slid = provider.slide(replacement)  # n_evict defaults to len(new)
        assert np.array_equal(slid.X, replacement)
        cold = _provider(replacement)
        assert (
            slid.squared_distances((0, 1, 2)).tobytes()
            == cold.squared_distances((0, 1, 2)).tobytes()
        )


def _monitor_run(explainer_factory, incremental, monkeypatch, backend="serial"):
    """One full monitor run over a drifting stream; returns its artefacts."""
    monkeypatch.setenv(STREAM_INCREMENTAL_ENV, "1" if incremental else "0")
    monkeypatch.setenv("REPRO_BACKEND", backend)
    X, anomalies = drifting_stream(
        length=240, n_features=4, anomaly_every=25, drift_at=120, seed=5
    )
    detector = StreamingDetector(LOF(k=8), window_size=60, n_features=4)
    monitor = StreamingExplainer(
        detector, explainer_factory(), threshold=2.5, dimensionality=2
    )
    events = monitor.consume(X)
    return monitor, events, anomalies


def _beam():
    return Beam(beam_width=4, result_size=8)


def _hics():
    return HiCS(mc_iterations=30, result_size=10, seed=0)


class TestByteIdentityDrill:
    """Kill-switch on vs off: identical event sequences, every backend."""

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    @pytest.mark.parametrize("factory", [_beam, _hics], ids=["beam", "hics"])
    def test_event_sequences_identical(self, factory, backend, monkeypatch):
        _, warm_events, _ = _monitor_run(
            factory, True, monkeypatch, backend=backend
        )
        _, cold_events, _ = _monitor_run(
            factory, False, monkeypatch, backend=backend
        )
        assert warm_events  # the workload must actually raise events
        # Dataclass equality covers index, score, the full ranking
        # (subspaces and float scores), and the rank delta.
        assert warm_events == cold_events

    def test_incremental_mode_actually_slides(self, monkeypatch):
        monitor, events, _ = _monitor_run(_beam, True, monkeypatch)
        provider = monitor.detector.context_provider
        assert provider is not None
        assert provider.stats()["blocks_slid"] > 0
        assert monitor.engine.stats()["chained"] > 0
        assert events

    def test_recompute_mode_never_slides(self, monkeypatch):
        monitor, _, _ = _monitor_run(_beam, False, monkeypatch)
        provider = monitor.detector.context_provider
        assert provider is not None
        assert provider.stats()["blocks_slid"] == 0
        assert monitor.engine.stats()["chained"] == 0

    def test_hics_contrast_reuse_engages(self, monkeypatch):
        monitor, events, _ = _monitor_run(_hics, True, monkeypatch)
        stats = monitor.contrast_index.stats()
        assert len(events) > 1
        assert stats["reused"] > 0
        # Reuse dominates: far fewer recomputes than the all-candidates-
        # per-event baseline would pay.
        baseline = stats["candidates"] * len(events)
        assert stats["recomputed"] < baseline

    def test_evaluation_identical_across_modes(self, monkeypatch):
        warm_monitor, _, anomalies = _monitor_run(_hics, True, monkeypatch)
        cold_monitor, _, _ = _monitor_run(_hics, False, monkeypatch)
        assert warm_monitor.evaluate(anomalies) == cold_monitor.evaluate(
            anomalies
        )


class TestContrastDrift:
    """Drift-gated generation refresh in `StreamContrastIndex`."""

    @staticmethod
    def _contexts():
        rng = np.random.default_rng(9)
        stable = rng.uniform(size=(80, 4))
        # A genuine marginal shift: every column collapses towards 0, so
        # probe ranks inside the pinned sorted columns pile up low.
        shifted = stable * 0.2
        return stable, shifted

    def test_shift_triggers_refresh_and_recompute(self, monkeypatch):
        monkeypatch.setenv(STREAM_INCREMENTAL_ENV, "1")
        stable, shifted = self._contexts()
        index = StreamContrastIndex(_hics(), 2)
        index.rank(stable)
        first = dict(index.stats())
        index.rank(shifted)
        second = index.stats()
        assert second["refreshes"] > first["refreshes"]
        assert second["recomputed"] > first["recomputed"]

    def test_no_shift_reuses_everything(self, monkeypatch):
        monkeypatch.setenv(STREAM_INCREMENTAL_ENV, "1")
        stable, _ = self._contexts()
        index = StreamContrastIndex(_hics(), 2)
        first = index.rank(stable)
        recomputed_once = index.stats()["recomputed"]
        second = index.rank(stable)
        assert first == second
        assert index.stats()["recomputed"] == recomputed_once
        assert index.stats()["reused"] > 0

    def test_ranking_identical_with_kill_switch(self, monkeypatch):
        stable, shifted = self._contexts()
        results = {}
        for mode in ("1", "0"):
            monkeypatch.setenv(STREAM_INCREMENTAL_ENV, mode)
            index = StreamContrastIndex(_hics(), 2)
            results[mode] = (index.rank(stable), index.rank(shifted))
        assert results["1"] == results["0"]


class TestExplanationDelta:
    def test_first_event_has_no_delta(self, monkeypatch):
        _, events, _ = _monitor_run(_beam, True, monkeypatch)
        assert events[0].delta is None
        assert all(e.delta is not None for e in events[1:])

    def test_delta_reconstructs_from_consecutive_explanations(
        self, monkeypatch
    ):
        _, events, _ = _monitor_run(_beam, True, monkeypatch)
        assert len(events) > 1
        for prev, cur in zip(events, events[1:]):
            prev_rank = {
                s: r for r, s in enumerate(prev.explanation.subspaces, 1)
            }
            cur_rank = {
                s: r for r, s in enumerate(cur.explanation.subspaces, 1)
            }
            delta = cur.delta
            assert set(delta.entered) == set(cur_rank) - set(prev_rank)
            assert set(delta.left) == set(prev_rank) - set(cur_rank)
            for subspace, was, now in delta.moved:
                assert prev_rank[subspace] == was
                assert cur_rank[subspace] == now
                assert was != now
            assert delta.unchanged == sum(
                1
                for s in cur_rank
                if prev_rank.get(s) == cur_rank[s]
            )
            assert delta.n_changed == (
                len(delta.entered) + len(delta.left) + len(delta.moved)
            )


class TestFastPaths:
    """Bulk warmup fast paths equal the one-point-at-a-time loop."""

    def test_score_stream_matches_update_loop(self):
        X, _ = drifting_stream(length=120, n_features=4, seed=3)
        fast = StreamingDetector(KNNDetector(k=5), window_size=40, n_features=4)
        slow = StreamingDetector(KNNDetector(k=5), window_size=40, n_features=4)
        bulk = fast.score_stream(X)
        loop = np.array([slow.update(row) for row in X])
        assert np.array_equal(bulk, loop)
        assert np.array_equal(fast.window.as_matrix(), slow.window.as_matrix())

    def test_consume_matches_update_loop(self, monkeypatch):
        monkeypatch.setenv(STREAM_INCREMENTAL_ENV, "1")
        X, _ = drifting_stream(length=160, n_features=4, seed=4)

        def monitor():
            detector = StreamingDetector(LOF(k=8), window_size=40, n_features=4)
            return StreamingExplainer(
                detector, _beam(), threshold=2.5, dimensionality=2
            )

        bulk = monitor()
        bulk_events = bulk.consume(X)
        loop = monitor()
        loop_events = [e for row in X for e in [loop.update(row)] if e]
        assert bulk_events
        assert bulk_events == loop_events
        assert bulk._index == loop._index


class TestSFEMetric:
    def test_feature_sequence_credits_first_occurrence(self):
        assert feature_sequence([(2, 3), (0, 2), (0, 1)]) == (2, 3, 0, 1)
        assert feature_sequence([]) == ()

    def test_sfe_length_cases(self):
        assert sfe_length([(0, 1), (2, 3)], [(0, 1)]) == 2
        assert sfe_length([(2, 3), (0, 1)], [(0, 1)]) == 4
        # Truth feature the ranking never surfaces: exhaust + penalty.
        assert sfe_length([(0, 1)], [(0, 2)]) == 3
        with pytest.raises(ValidationError):
            sfe_length([(0, 1)], [])

    @staticmethod
    def _event(index, ranked):
        return ExplainedAnomaly(
            index=index,
            score=4.0,
            explanation=RankedSubspaces.from_pairs(
                [(Subspace(s), 1.0 / (r + 1)) for r, s in enumerate(ranked)]
            ),
        )

    def test_evaluate_stream_matches_by_index(self):
        events = [
            self._event(50, [(0, 1), (2, 3)]),   # truth (0,1) at rank 1
            self._event(75, [(2, 3), (0, 1)]),   # truth (0,1) at rank 2
            self._event(90, [(2, 3)]),           # no matching truth
        ]
        truth = [
            StreamAnomaly(index=50, subspace=Subspace((0, 1))),
            StreamAnomaly(index=75, subspace=Subspace((0, 1))),
            StreamAnomaly(index=200, subspace=Subspace((2, 3))),  # missed
        ]
        result = evaluate_stream(events, truth)
        assert result.n_events == 3
        assert result.n_anomalies == 3
        assert result.n_matched == 2
        assert result.detection_recall == pytest.approx(2 / 3)
        assert result.mean_average_precision == pytest.approx((1.0 + 0.5) / 2)
        assert result.mean_sfe == pytest.approx((2 + 4) / 2)

    def test_evaluate_stream_min_index_excludes_warmup_truth(self):
        events = [self._event(50, [(0, 1)])]
        truth = [
            StreamAnomaly(index=10, subspace=Subspace((0, 1))),  # warmup
            StreamAnomaly(index=50, subspace=Subspace((0, 1))),
        ]
        result = evaluate_stream(events, truth, min_index=30)
        assert result.n_anomalies == 1
        assert result.detection_recall == 1.0
