"""Unit tests for the CART regression-tree substrate."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, ValidationError
from repro.surrogate import RegressionTree


class TestFitPredict:
    def test_step_function(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 10.0, 10.0])
        tree = RegressionTree(max_depth=1).fit(X, y)
        assert tree.predict(np.array([[0.5]]))[0] == pytest.approx(0.0)
        assert tree.predict(np.array([[2.5]]))[0] == pytest.approx(10.0)
        assert tree.root.feature == 0
        assert tree.root.threshold == pytest.approx(1.5)

    def test_constant_target_single_leaf(self):
        X = np.arange(10.0).reshape(-1, 1)
        tree = RegressionTree().fit(X, np.ones(10))
        assert tree.root.is_leaf
        assert tree.n_leaves == 1
        assert np.allclose(tree.predict(X), 1.0)

    def test_reduces_training_error_with_depth(self, rng):
        X = rng.normal(size=(200, 3))
        y = np.where(X[:, 1] > 0, 5.0, -5.0) + rng.normal(0, 0.1, 200)
        shallow = RegressionTree(max_depth=1).fit(X, y)
        deep = RegressionTree(max_depth=4).fit(X, y)
        err = lambda t: float(np.mean((t.predict(X) - y) ** 2))
        assert err(deep) <= err(shallow)
        assert err(shallow) < float(np.var(y))

    def test_min_samples_split_respected(self):
        X = np.arange(6.0).reshape(-1, 1)
        y = np.array([0.0, 0, 0, 1, 1, 1])
        tree = RegressionTree(max_depth=5, min_samples_split=10).fit(X, y)
        assert tree.root.is_leaf

    def test_picks_informative_feature(self, rng):
        X = rng.normal(size=(300, 4))
        y = 3.0 * (X[:, 2] > 0.5)
        tree = RegressionTree(max_depth=1).fit(X, y)
        assert tree.root.feature == 2

    def test_deterministic(self, rng):
        X = rng.normal(size=(100, 3))
        y = X[:, 0] ** 2
        a = RegressionTree(max_depth=3).fit(X, y)
        b = RegressionTree(max_depth=3).fit(X, y)
        assert np.allclose(a.predict(X), b.predict(X))


class TestPathsAndImportances:
    @pytest.fixture()
    def fitted(self, rng):
        X = rng.normal(size=(300, 4))
        y = np.where(X[:, 1] > 0, 4.0, 0.0) + np.where(X[:, 3] > 0, 2.0, 0.0)
        return X, RegressionTree(max_depth=3).fit(X, y)

    def test_decision_path_starts_at_root(self, fitted):
        X, tree = fitted
        path = tree.decision_path(X[0])
        assert path[0] is tree.root
        assert path[-1].is_leaf

    def test_path_gains_only_on_path_features(self, fitted):
        X, tree = fitted
        gains = tree.path_feature_gains(X[0])
        path_features = {
            n.feature for n in tree.decision_path(X[0]) if not n.is_leaf
        }
        for f in range(4):
            if f not in path_features:
                assert gains[f] == 0.0

    def test_importances_identify_signal_features(self, fitted):
        _, tree = fitted
        importances = tree.feature_importances()
        assert importances.sum() == pytest.approx(1.0)
        assert importances[1] > importances[0]
        assert importances[1] > importances[2]
        assert importances[3] > 0.0

    def test_importances_zero_for_stump(self):
        X = np.arange(10.0).reshape(-1, 1)
        tree = RegressionTree().fit(X, np.zeros(10))
        assert (tree.feature_importances() == 0.0).all()


class TestValidation:
    def test_not_fitted(self):
        tree = RegressionTree()
        with pytest.raises(NotFittedError):
            tree.predict(np.zeros((2, 2)))
        with pytest.raises(NotFittedError):
            tree.feature_importances()

    def test_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))

    def test_wrong_width_at_predict(self, rng):
        tree = RegressionTree().fit(rng.normal(size=(10, 2)), rng.normal(size=10))
        with pytest.raises(ValidationError):
            tree.predict(np.zeros((2, 3)))

    def test_bad_min_gain(self):
        with pytest.raises(ValidationError):
            RegressionTree(min_gain=-1.0)
