"""Unit tests for repro.utils.caching.LRUCache."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.caching import LRUCache


class TestBasics:
    def test_put_get(self):
        cache: LRUCache[str, int] = LRUCache()
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1

    def test_miss_returns_none(self):
        cache: LRUCache[str, int] = LRUCache()
        assert cache.get("missing") is None

    def test_get_or_compute(self):
        cache: LRUCache[str, int] = LRUCache()
        calls = []

        def compute():
            calls.append(1)
            return 7

        assert cache.get_or_compute("k", compute) == 7
        assert cache.get_or_compute("k", compute) == 7
        assert len(calls) == 1

    def test_overwrite_updates_bytes(self):
        cache: LRUCache[str, np.ndarray] = LRUCache()
        cache.put("a", np.zeros(10))
        cache.put("a", np.zeros(20))
        assert cache.nbytes == 20 * 8

    def test_clear(self):
        cache: LRUCache[str, int] = LRUCache()
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.nbytes == 0


class TestEviction:
    def test_evicts_lru(self):
        cache: LRUCache[str, np.ndarray] = LRUCache(max_bytes=200)
        cache.put("old", np.zeros(10))  # 80 bytes
        cache.put("new", np.zeros(10))
        cache.get("old")  # old is now most recently used
        cache.put("extra", np.zeros(10))  # exceeds 200 -> evict "new"
        assert "old" in cache
        assert "new" not in cache
        assert "extra" in cache

    def test_keeps_at_least_one_entry(self):
        cache: LRUCache[str, np.ndarray] = LRUCache(max_bytes=8)
        cache.put("huge", np.zeros(100))
        assert "huge" in cache

    def test_invalid_budget(self):
        with pytest.raises(ValidationError):
            LRUCache(max_bytes=0)


class TestStatistics:
    def test_eviction_counter_under_byte_pressure(self):
        cache: LRUCache[str, np.ndarray] = LRUCache(max_bytes=200)
        for i in range(6):
            cache.put(f"k{i}", np.zeros(10))  # 80 bytes each, budget fits 2
        assert len(cache) == 2
        assert cache.evictions == 4

    def test_stats_snapshot_under_pressure(self):
        cache: LRUCache[str, np.ndarray] = LRUCache(max_bytes=200)
        cache.put("a", np.zeros(10))
        cache.put("b", np.zeros(10))
        cache.get("a")  # hit
        cache.get("zzz")  # miss
        cache.put("c", np.zeros(10))  # evicts "b" (LRU)
        stats = cache.stats()
        assert stats == {
            "entries": 2,
            "nbytes": 160,
            "hits": 1,
            "misses": 1,
            "evictions": 1,
            "hit_rate": pytest.approx(0.5),
        }

    def test_overwrite_is_not_an_eviction(self):
        cache: LRUCache[str, np.ndarray] = LRUCache(max_bytes=200)
        cache.put("a", np.zeros(10))
        cache.put("a", np.zeros(10))
        assert cache.evictions == 0

    def test_clear_resets_evictions(self):
        cache: LRUCache[str, np.ndarray] = LRUCache(max_bytes=100)
        cache.put("a", np.zeros(10))
        cache.put("b", np.zeros(10))
        assert cache.evictions == 1
        cache.clear()
        assert cache.evictions == 0

    def test_named_cache_reports_obs_counters(self):
        from repro.obs import metrics as obs_metrics

        hits = obs_metrics.counter("repro_cache_hits_total")
        misses = obs_metrics.counter("repro_cache_misses_total")
        evictions = obs_metrics.counter("repro_cache_evictions_total")
        label = "test_caching_named"
        hits0 = hits.value(cache=label)
        misses0 = misses.value(cache=label)
        evictions0 = evictions.value(cache=label)

        cache: LRUCache[str, np.ndarray] = LRUCache(max_bytes=200, name=label)
        cache.put("a", np.zeros(10))
        cache.get("a")
        cache.get("missing")
        cache.put("b", np.zeros(10))
        cache.put("c", np.zeros(10))  # over budget -> evict

        assert hits.value(cache=label) == hits0 + 1
        assert misses.value(cache=label) == misses0 + 1
        assert evictions.value(cache=label) == evictions0 + 1

    def test_unnamed_cache_stays_out_of_obs(self):
        from repro.obs import metrics as obs_metrics

        hits = obs_metrics.counter("repro_cache_hits_total")
        before = dict(hits.samples())
        cache: LRUCache[str, int] = LRUCache()
        cache.put("a", 1)
        cache.get("a")
        assert dict(hits.samples()) == before

    def test_hit_rate(self):
        cache: LRUCache[str, int] = LRUCache()
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hits == 1
        assert cache.misses == 1
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert LRUCache().hit_rate == 0.0

    def test_custom_sizeof(self):
        cache: LRUCache[str, str] = LRUCache(max_bytes=10, sizeof=len)
        cache.put("a", "xxxx")
        cache.put("b", "yyyyyy")
        assert cache.nbytes <= 10


class TestThreadSafety:
    """The scorer installs batch results from worker threads; the cache
    must survive concurrent mixed traffic without corrupting its byte
    accounting or statistics."""

    def test_concurrent_put_get_consistent(self):
        import threading

        cache: LRUCache[int, np.ndarray] = LRUCache(max_bytes=512 * 80)
        errors: list[Exception] = []
        barrier = threading.Barrier(4)

        def worker(offset: int) -> None:
            try:
                barrier.wait()
                for i in range(200):
                    key = (offset * 200 + i) % 100
                    cache.put(key, np.full(8, key, dtype=np.float64))
                    got = cache.get(key)
                    # Another thread may have evicted it, but a present
                    # value must be the right one.
                    if got is not None:
                        assert got[0] == key
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        # Accounting must match the surviving entries exactly.
        assert cache.nbytes == sum(
            v.nbytes for v in cache._data.values()
        )
        assert len(cache) == len(cache._data)
        assert cache.hits + cache.misses == 4 * 200

    def test_concurrent_eviction_keeps_budget(self):
        import threading

        cache: LRUCache[int, np.ndarray] = LRUCache(max_bytes=10 * 80)
        barrier = threading.Barrier(4)

        def hammer(offset: int) -> None:
            barrier.wait()
            for i in range(300):
                cache.put(offset * 1000 + i, np.zeros(8))

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert cache.nbytes <= 10 * 80
        assert cache.stats()["evictions"] > 0

    def test_get_or_compute_concurrent_last_writer_wins(self):
        import threading

        cache: LRUCache[str, int] = LRUCache()
        barrier = threading.Barrier(8)
        seen: list[int] = []

        def compute_slot(value: int) -> None:
            barrier.wait()
            seen.append(cache.get_or_compute("slot", lambda: value))

        threads = [
            threading.Thread(target=compute_slot, args=(v,)) for v in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Redundant computes are allowed; the cached value must be one of
        # the computed ones and reads must never see a torn state.
        assert cache.get("slot") in range(8)
        assert len(seen) == 8
