"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.rng import as_rng, spawn_rngs


class TestAsRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        assert as_rng(42).integers(1000) == as_rng(42).integers(1000)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        a = as_rng(seq).integers(1000)
        b = as_rng(np.random.SeedSequence(7)).integers(1000)
        assert a == b

    def test_rejects_strings(self):
        with pytest.raises(ValidationError):
            as_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_differ(self):
        children = spawn_rngs(0, 3)
        draws = [c.integers(10**9) for c in children]
        assert len(set(draws)) == 3

    def test_deterministic_from_int(self):
        a = [g.integers(10**9) for g in spawn_rngs(1, 4)]
        b = [g.integers(10**9) for g in spawn_rngs(1, 4)]
        assert a == b

    def test_from_generator_reproducible(self):
        a = [g.integers(10**9) for g in spawn_rngs(np.random.default_rng(3), 2)]
        b = [g.integers(10**9) for g in spawn_rngs(np.random.default_rng(3), 2)]
        assert a == b

    def test_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            spawn_rngs(0, -1)
