"""Unit tests for the ASCII scatter renderer."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.scatter import scatter_projection


@pytest.fixture()
def data():
    gen = np.random.default_rng(0)
    X = gen.normal(size=(50, 3))
    X[0] = [9.0, 9.0, 0.0]
    return X


class TestScatterProjection:
    def test_marks_outlier(self, data):
        art = scatter_projection(data, (0, 1), outliers=[0])
        assert "X" in art or "#" in art
        assert "·" in art

    def test_outlier_in_top_right(self, data):
        art = scatter_projection(data, (0, 1), outliers=[0], width=40, height=12)
        plot_lines = [l for l in art.splitlines() if l.startswith("  |")]
        # Point (9, 9) dominates both ranges -> drawn on the first grid row,
        # rightmost column.
        assert plot_lines[0].rstrip()[-1] in "X#"

    def test_axis_labels(self, data):
        art = scatter_projection(data, (2, 1))
        assert "F2" in art and "F1" in art

    def test_title(self, data):
        art = scatter_projection(data, (0, 1), title="demo")
        assert art.splitlines()[0] == "demo"

    def test_constant_feature_does_not_crash(self):
        X = np.zeros((10, 2))
        art = scatter_projection(X, (0, 1))
        assert "·" in art

    def test_rejects_non_2d_subspace(self, data):
        with pytest.raises(ValidationError, match="2d subspace"):
            scatter_projection(data, (0, 1, 2))

    def test_rejects_bad_outlier_index(self, data):
        with pytest.raises(ValidationError, match="out of range"):
            scatter_projection(data, (0, 1), outliers=[500])

    def test_dimensions_respected(self, data):
        art = scatter_projection(data, (0, 1), width=30, height=8)
        plot_lines = [l for l in art.splitlines() if l.startswith("  |")]
        assert len(plot_lines) == 8
        assert all(len(l) <= 3 + 30 for l in plot_lines)
