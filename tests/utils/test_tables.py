"""Unit tests for repro.utils.tables."""

import pytest

from repro.exceptions import ValidationError
from repro.utils.tables import format_kv, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["algo", "map"], [["beam", 0.5], ["refout", 1.0]])
        lines = text.splitlines()
        assert lines[0].startswith("algo")
        assert "0.500" in lines[2]
        assert "1.000" in lines[3]
        # every line has the separator at the same position
        positions = {line.find("|") for line in lines if "|" in line}
        assert len(positions) == 1

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_format_override(self):
        text = format_table(["v"], [[0.123456]], float_fmt="{:.1f}")
        assert "0.1" in text

    def test_bool_not_formatted_as_float(self):
        text = format_table(["flag"], [[True]])
        assert "True" in text

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValidationError, match="cells"):
            format_table(["a", "b"], [[1]])

    def test_rejects_empty_headers(self):
        with pytest.raises(ValidationError, match="headers"):
            format_table([], [])

    def test_empty_body(self):
        text = format_table(["a"], [])
        assert len(text.splitlines()) == 2


class TestFormatKv:
    def test_alignment(self):
        text = format_kv({"short": 1, "much_longer_key": 2})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert format_kv({}) == ""
