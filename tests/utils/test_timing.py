"""Unit tests for repro.utils.timing."""

import time

from repro.utils.timing import Stopwatch, time_call, timed


class TestStopwatch:
    def test_accumulates_intervals(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first

    def test_running_flag(self):
        sw = Stopwatch()
        assert not sw.running
        sw.start()
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_double_start_is_noop(self):
        sw = Stopwatch()
        sw.start()
        sw.start()
        sw.stop()
        assert sw.elapsed >= 0.0

    def test_stop_without_start(self):
        sw = Stopwatch()
        sw.stop()
        assert sw.elapsed == 0.0

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.001)
        sw.reset()
        assert sw.elapsed == 0.0

    def test_elapsed_while_running(self):
        sw = Stopwatch()
        sw.start()
        time.sleep(0.005)
        assert sw.elapsed > 0.0
        sw.stop()


class TestTimed:
    def test_records_key(self):
        store: dict[str, float] = {}
        with timed(store, "x"):
            time.sleep(0.001)
        assert store["x"] > 0.0

    def test_accumulates(self):
        store = {"x": 1.0}
        with timed(store, "x"):
            pass
        assert store["x"] >= 1.0

    def test_records_on_exception(self):
        store: dict[str, float] = {}
        try:
            with timed(store, "x"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "x" in store


class TestTimeCall:
    def test_returns_result_and_elapsed(self):
        result, elapsed = time_call(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0.0
