"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_feature_indices,
    check_in_range,
    check_matrix,
    check_positive_int,
    check_probability,
    check_vector,
)


class TestCheckMatrix:
    def test_accepts_lists(self):
        out = check_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_returns_contiguous(self):
        X = np.asfortranarray(np.ones((3, 2)))
        assert check_matrix(X).flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_matrix([1.0, 2.0])

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_matrix([[1.0, float("nan")]])

    def test_allows_nan_when_requested(self):
        out = check_matrix([[1.0, float("nan")]], allow_nan=True)
        assert np.isnan(out[0, 1])

    def test_rejects_too_few_rows(self):
        with pytest.raises(ValidationError, match="at least 2 rows"):
            check_matrix([[1.0, 2.0]], min_rows=2)

    def test_rejects_too_few_cols(self):
        with pytest.raises(ValidationError, match="at least 3 columns"):
            check_matrix([[1.0, 2.0]], min_cols=3)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError, match="not convertible"):
            check_matrix([["a", "b"]])

    def test_error_uses_name(self):
        with pytest.raises(ValidationError, match="data must be"):
            check_matrix([1.0], name="data")


class TestCheckVector:
    def test_basic(self):
        out = check_vector([1, 2, 3])
        assert out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError, match="1-dimensional"):
            check_vector([[1.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="NaN or infinite"):
            check_vector([1.0, float("inf")])

    def test_min_len(self):
        with pytest.raises(ValidationError, match="at least 2 entries"):
            check_vector([1.0], min_len=2)


class TestCheckPositiveInt:
    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(5), name="k") == 5

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="integer"):
            check_positive_int(True, name="k")

    def test_rejects_float(self):
        with pytest.raises(ValidationError, match="integer"):
            check_positive_int(2.0, name="k")

    def test_rejects_below_minimum(self):
        with pytest.raises(ValidationError, match=">= 2"):
            check_positive_int(1, name="k", minimum=2)


class TestCheckProbability:
    def test_bounds_inclusive(self):
        assert check_probability(0.0, name="p") == 0.0
        assert check_probability(1.0, name="p") == 1.0

    def test_bounds_exclusive(self):
        with pytest.raises(ValidationError):
            check_probability(0.0, name="p", inclusive=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError, match=r"\[0, 1\]"):
            check_probability(1.5, name="p")


class TestCheckInRange:
    def test_accepts_bounds(self):
        assert check_in_range(3, name="x", low=3, high=5) == 3.0

    def test_rejects_outside(self):
        with pytest.raises(ValidationError):
            check_in_range(6, name="x", low=3, high=5)

    def test_rejects_non_number(self):
        with pytest.raises(ValidationError):
            check_in_range("a", name="x", low=0, high=1)


class TestCheckFeatureIndices:
    def test_sorts(self):
        assert check_feature_indices([3, 1, 2], n_features=5) == (1, 2, 3)

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError, match="duplicate"):
            check_feature_indices([1, 1], n_features=5)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="empty"):
            check_feature_indices([], n_features=5)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError, match="out of range"):
            check_feature_indices([5], n_features=5)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="out of range"):
            check_feature_indices([-1], n_features=5)
