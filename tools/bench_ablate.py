#!/usr/bin/env python3
"""Baseline-plus-one-off ablation matrix over the speed stack's kill-switches.

The codebase has accumulated a stack of optimisations, each behind its own
kill-switch: batched Welch statistics (``REPRO_STATS_BATCH``), the HiCS
contrast cache (``REPRO_HICS_CACHE``), the shared distance cache
(``REPRO_DIST_CACHE_MB``), the k-NN sketch (``REPRO_SKETCH_FACTOR``), the
execution backend (``REPRO_BACKEND``), and the shared-memory data plane
(``REPRO_SHM``). Individually each was benchmarked when it landed; this
tool answers the standing question "what is each one worth *today*, on
this machine, on one common workload" — and catches the optimisation that
quietly stopped optimising.

Protocol: one fixed grid workload (two seeded synthetic datasets, LOF,
Beam + HiCS explainers) is run in a **fresh subprocess per variant** so
env kill-switches take effect at import/construction time. The baseline
runs with every optimisation on; each variant flips exactly one switch
off relative to its reference (the thread-backend baseline, except
``shm=off`` which is referenced against the ``backend=process`` variant —
the plane only matters to process workers). Variants are ranked by the
slowdown they cause, i.e. by how much the disabled optimisation is worth.

Every variant must produce bit-identical result tables (deterministic
fields only — timings excluded): a kill-switch that changes *results* is
a correctness bug, and the tool exits non-zero on any digest mismatch.

Usage::

    PYTHONPATH=src python tools/bench_ablate.py --quick
    PYTHONPATH=src python tools/bench_ablate.py --out BENCH_ablate.json

The JSON records carry the same workload-signature keys the bench
sentinel matches on, plus a run-manifest stamp, so the file can ride the
same CI artifact path as the ``BENCH_*.json`` trajectory files.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
import zlib
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Fields of a result row that are deterministic across backends and
#: kill-switches — timings are excluded on purpose.
DIGEST_FIELDS = (
    "dataset",
    "detector",
    "explainer",
    "pipeline",
    "dimensionality",
    "map",
    "mean_recall",
    "n_subspaces_scored",
    "n_points",
)

#: The ablation matrix: (variant name, env overrides, reference variant).
#: ``reference`` names the variant whose wall time the slowdown is
#: computed against — ``shm=off`` compares against ``backend=process``
#: (its one-switch sibling), everything else against ``baseline``.
VARIANTS: tuple[tuple[str, dict[str, str], str], ...] = (
    ("baseline", {}, ""),
    ("stats_batch=off", {"REPRO_STATS_BATCH": "0"}, "baseline"),
    ("hics_cache=off", {"REPRO_HICS_CACHE": "0"}, "baseline"),
    ("dist_cache=off", {"REPRO_DIST_CACHE_MB": "0"}, "baseline"),
    ("sketch=off", {"REPRO_SKETCH_FACTOR": "0"}, "baseline"),
    ("backend=serial", {"REPRO_BACKEND": "serial"}, "baseline"),
    (
        "backend=process",
        {
            "REPRO_BACKEND": "process",
            "REPRO_MP_START": "spawn",
            "REPRO_SHM": "1",
        },
        "baseline",
    ),
    (
        "shm=off",
        {
            "REPRO_BACKEND": "process",
            "REPRO_MP_START": "spawn",
            "REPRO_SHM": "0",
        },
        "backend=process",
    ),
)

#: Env the baseline pins so every variant starts from the same shape:
#: thread backend, two workers, everything else at its (on) default.
BASELINE_ENV = {"REPRO_BACKEND": "thread", "REPRO_N_JOBS": "2"}


def _workload(quick: bool) -> dict:
    """Run the measured grid once in-process and return wall time + digest.

    Executed only inside the per-variant child (``--workload``), so
    whatever kill-switch env the parent set is already in force before
    any provider, cache, or backend is constructed.
    """
    from repro.datasets.synthetic import make_hics_dataset
    from repro.detectors import LOF
    from repro.explainers import Beam, HiCS
    from repro.pipeline.parallel import run_grid_parallel

    n = 150 if quick else 400
    d = 14  # smallest layout the HiCS generator supports
    datasets = [
        make_hics_dataset(n_features=d, n_samples=n, seed=seed)
        for seed in (0, 1)
    ]
    detectors = [LOF(k=10)]
    factories = [
        lambda: Beam(beam_width=10, result_size=10),
        lambda: HiCS(
            alpha=0.15,
            mc_iterations=8 if quick else 25,
            candidate_cutoff=40,
            test="welch",
            result_size=10,
        ),
    ]
    start = time.perf_counter()
    table, skips, undefined, failures = run_grid_parallel(
        datasets, detectors, factories, [2], n_jobs=2
    )
    wall = time.perf_counter() - start
    payload = json.dumps(
        [[row.get(f) for f in DIGEST_FIELDS] for row in table.rows()],
        sort_keys=True,
    )
    return {
        "wall_time_s": wall,
        "digest": zlib.crc32(payload.encode("utf-8")),
        "rows": len(table),
        "skips": len(skips) + len(undefined) + len(failures),
        "n": n,
        "d": d,
    }


def _run_variant(
    name: str, overrides: dict[str, str], quick: bool
) -> dict:
    """One isolated child run of the workload under a variant's env."""
    env = dict(os.environ)
    # Strip any ambient kill-switch state so the matrix, not the caller's
    # shell, decides what is on.
    for key in (
        "REPRO_STATS_BATCH", "REPRO_HICS_CACHE", "REPRO_DIST_CACHE_MB",
        "REPRO_SKETCH_FACTOR", "REPRO_BACKEND", "REPRO_N_JOBS",
        "REPRO_SHM", "REPRO_MP_START", "REPRO_GRID_SHARDS",
    ):
        env.pop(key, None)
    env.update(BASELINE_ENV)
    env.update(overrides)
    env.setdefault("PYTHONPATH", str(REPO_ROOT / "src"))
    cmd = [sys.executable, __file__, "--workload"]
    if quick:
        cmd.append("--quick")
    proc = subprocess.run(
        cmd, env=env, capture_output=True, text=True, cwd=REPO_ROOT
    )
    if proc.returncode != 0:
        raise SystemExit(
            f"FAIL: variant {name!r} exited {proc.returncode}:\n"
            f"{proc.stderr.strip()}"
        )
    return json.loads(proc.stdout)


def main(argv: "list[str] | None" = None) -> None:
    parser = argparse.ArgumentParser(
        description="one-off ablation matrix over the speed kill-switches"
    )
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=2,
                        help="isolated runs per variant; best wall time wins")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="write JSON records (default: print report only)")
    parser.add_argument("--workload", action="store_true",
                        help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.workload:
        print(json.dumps(_workload(args.quick)))
        return

    runs: dict[str, dict] = {}
    for name, overrides, _ in VARIANTS:
        best: dict | None = None
        for _ in range(max(1, args.repeats)):
            run = _run_variant(name, overrides, args.quick)
            if best is None or run["wall_time_s"] < best["wall_time_s"]:
                best = run
        assert best is not None
        runs[name] = best
        print(f"  {name:<18} {best['wall_time_s']:8.3f}s "
              f"digest={best['digest']}", file=sys.stderr)

    digests = {runs[name]["digest"] for name, _, _ in VARIANTS}
    identical = len(digests) == 1
    if not identical:
        detail = {name: runs[name]["digest"] for name, _, _ in VARIANTS}
        print(f"FAIL: result digests differ across variants: {detail}",
              file=sys.stderr)

    records: list[dict] = []
    ranked: list[tuple[float, str, str]] = []
    for name, overrides, reference in VARIANTS:
        run = runs[name]
        record = {
            "op": f"ablate ({name})",
            "n": run["n"],
            "d": run["d"],
            "quick": bool(args.quick),
            "wall_time_s": run["wall_time_s"],
            "rows": run["rows"],
            "ranked_identical": identical,
            "repeats": max(1, args.repeats),
            "env": overrides,
        }
        if reference:
            ref_wall = runs[reference]["wall_time_s"]
            slowdown = run["wall_time_s"] / ref_wall if ref_wall else 0.0
            record["reference"] = reference
            record["slowdown"] = slowdown
            ranked.append((slowdown, name, reference))
        records.append(record)

    try:
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.obs import RunManifest

        stamp = RunManifest.collect().compact()
        for record in records:
            record["manifest"] = stamp
    except Exception as exc:  # pragma: no cover - stamp is best-effort
        print(f"note: manifest stamp unavailable: {exc}", file=sys.stderr)

    ranked.sort(reverse=True)
    base = runs["baseline"]["wall_time_s"]
    print(f"\nablation report (baseline {base:.3f}s, "
          f"best of {max(1, args.repeats)} isolated runs per variant):")
    print(f"  {'variant':<18} {'wall':>8}  {'slowdown':>8}  vs")
    for slowdown, name, reference in ranked:
        print(f"  {name:<18} {runs[name]['wall_time_s']:7.3f}s "
              f"{slowdown:7.2f}x  {reference}")
    print("  (slowdown > 1: disabling that switch costs time; "
          "the higher, the more the optimisation is worth)")

    if args.out:
        Path(args.out).write_text(
            json.dumps(records, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote {len(records)} records to {args.out}", file=sys.stderr)

    if not identical:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
