#!/usr/bin/env python3
"""Merge ``BENCH_*.json`` perf records into one trajectory table.

Each benchmark (``benchmarks/bench_scorer.py``, ``benchmarks/bench_hics.py``)
writes its machine-readable records to its own ``BENCH_<name>.json`` file —
useful as CI artifacts, useless for eyeballing the perf history side by
side. This tool reads every record file and prints a single aligned table
(suite, op, workload, wall time, speedup, cache hit rate), so a CI log or
a local run shows the whole performance trajectory at once.

Usage::

    python tools/bench_report.py                  # repo-root BENCH_*.json
    python tools/bench_report.py a.json b.json    # explicit files

Exits non-zero when no record file is found (a CI misconfiguration
should fail loudly, not print an empty table).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(path: Path) -> list[dict]:
    with open(path, encoding="utf-8") as fh:
        records = json.load(fh)
    if not isinstance(records, list):
        raise SystemExit(f"{path}: expected a JSON list of records")
    return [r for r in records if isinstance(r, dict)]


def _workload(record: dict) -> str:
    """Compact workload descriptor from whatever shape keys a record has."""
    parts = []
    if "n" in record and "d" in record:
        parts.append(f"({record['n']}, {record['d']})")
    for key, label in (
        ("n_subspaces", "subspaces"),
        ("detectors", "detectors"),
        ("points", "points"),
        ("dimensionality", "dim"),
        ("mc_iterations", "mc"),
        ("beam_width", "beam"),
    ):
        if key in record:
            parts.append(f"{record[key]} {label}")
    return ", ".join(parts)


def _format_row(suite: str, record: dict) -> tuple[str, str, str, str, str]:
    wall = record.get("wall_time_s")
    wall_s = f"{wall * 1000:9.1f} ms" if wall is not None else ""
    speedup = record.get("speedup")
    speedup_s = f"{speedup:5.2f}x" if speedup is not None else ""
    if record.get("ranked_identical"):
        speedup_s += " (ranked identical)"
    hit_rate = record.get("cache_hit_rate")
    extra = f"hit rate {hit_rate:.2%}" if hit_rate else ""
    return suite, str(record.get("op", "?")), _workload(record), wall_s, speedup_s or extra


def build_table(paths: list[Path]) -> str:
    """The merged trajectory table for ``paths``, as one printable string."""
    rows: list[tuple[str, str, str, str, str]] = []
    for path in paths:
        suite = path.stem.removeprefix("BENCH_")
        for record in _load(path):
            rows.append(_format_row(suite, record))
    headers = ("suite", "op", "workload", "wall time", "notes")
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(5)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        paths = [Path(a) for a in argv]
        missing = [p for p in paths if not p.is_file()]
        if missing:
            print(f"error: no such record file: "
                  f"{', '.join(map(str, missing))}", file=sys.stderr)
            return 1
    else:
        paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
        if not paths:
            print(f"error: no BENCH_*.json files under {REPO_ROOT}",
                  file=sys.stderr)
            return 1
    print(build_table(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main())
