#!/usr/bin/env python3
"""Merge ``BENCH_*.json`` perf records into one trajectory table.

Each benchmark (``benchmarks/bench_scorer.py``, ``benchmarks/bench_hics.py``)
writes its machine-readable records to its own ``BENCH_<name>.json`` file —
useful as CI artifacts, useless for eyeballing the perf history side by
side. This tool reads every record file and prints a single aligned table
(suite, op, workload, wall time, speedup, cache hit rate), so a CI log or
a local run shows the whole performance trajectory at once.

Usage::

    python tools/bench_report.py                  # repo-root BENCH_*.json
    python tools/bench_report.py a.json b.json    # explicit files

Exits non-zero when no record file is found (a CI misconfiguration
should fail loudly, not print an empty table).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load(path: Path) -> list[dict]:
    """Records from one file — tolerant of missing/empty/torn files.

    A benchmark leg that was cancelled mid-write (or never ran) must not
    take down the whole trajectory report; such files are skipped with a
    note on stderr and the table is built from the rest.
    """
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        print(f"note: skipping {path}: {exc}", file=sys.stderr)
        return []
    if not text.strip():
        print(f"note: skipping {path}: empty file", file=sys.stderr)
        return []
    try:
        records = json.loads(text)
    except json.JSONDecodeError as exc:
        print(f"note: skipping {path}: not valid JSON ({exc})", file=sys.stderr)
        return []
    if not isinstance(records, list):
        print(f"note: skipping {path}: expected a JSON list of records",
              file=sys.stderr)
        return []
    return [r for r in records if isinstance(r, dict)]


def _workload(record: dict) -> str:
    """Compact workload descriptor from whatever shape keys a record has."""
    parts = []
    if "n" in record and "d" in record:
        parts.append(f"({record['n']}, {record['d']})")
    for key, label in (
        ("n_subspaces", "subspaces"),
        ("detectors", "detectors"),
        ("points", "points"),
        ("dimensionality", "dim"),
        ("mc_iterations", "mc"),
        ("beam_width", "beam"),
        ("n_requests", "requests"),
        ("clients", "clients"),
        ("workers", "workers"),
        ("window", "window"),
        ("length", "length"),
        ("anomaly_every", "anomaly every"),
    ):
        if key in record:
            parts.append(f"{record[key]} {label}")
    if record.get("quick"):
        parts.append("quick")
    return ", ".join(parts)


def _format_row(suite: str, record: dict) -> tuple[str, ...]:
    wall = record.get("wall_time_s")
    wall_s = f"{wall * 1000:9.1f} ms" if wall is not None else ""
    speedup = record.get("speedup")
    speedup_s = f"{speedup:5.2f}x" if speedup is not None else ""
    if record.get("ranked_identical"):
        speedup_s += " (ranked identical)"
    if record.get("byte_identical") and speedup is not None:
        speedup_s += " (byte identical)"
    hit_rate = record.get("cache_hit_rate")
    extra = f"hit rate {hit_rate:.2%}" if hit_rate else ""
    # Latency-style records (bench_serve) describe themselves by
    # throughput and percentiles rather than one wall time.
    # Streaming records (bench_stream) describe themselves by window
    # throughput.
    if not extra and "windows_per_s" in record:
        extra = f"{record['windows_per_s']:.1f} windows/s"
        if "events" in record:
            extra += f", {record['events']} events"
    if not extra and "qps" in record:
        extra = (
            f"{record['qps']:.1f} qps, p50 {record.get('p50_ms', 0):.0f} ms, "
            f"p95 {record.get('p95_ms', 0):.0f} ms, "
            f"p99 {record.get('p99_ms', 0):.0f} ms"
        )
    manifest = record.get("manifest")
    if isinstance(manifest, dict):
        rev = str(manifest.get("git_rev", ""))[:12]
        date = str(manifest.get("date", ""))
    else:
        rev = date = ""
    return (suite, str(record.get("op", "?")), _workload(record), wall_s,
            speedup_s or extra, rev, date)


def build_table(paths: list[Path]) -> str:
    """The merged trajectory table for ``paths``, as one printable string.

    Provenance columns (git revision, date) appear only when at least one
    record carries a manifest stamp, so older trajectories keep the
    narrow table.
    """
    rows: list[tuple[str, ...]] = []
    for path in paths:
        suite = path.stem.removeprefix("BENCH_")
        for record in _load(path):
            rows.append(_format_row(suite, record))
    headers: tuple[str, ...] = ("suite", "op", "workload", "wall time",
                                "notes", "rev", "date")
    if not any(row[5] or row[6] for row in rows):
        headers = headers[:5]
        rows = [row[:5] for row in rows]
    n_cols = len(headers)
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in rows)) if rows else len(headers[col])
        for col in range(n_cols)
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip(),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv:
        paths = []
        for arg in argv:
            path = Path(arg)
            if not path.is_file():
                print(f"note: skipping {path}: no such record file",
                      file=sys.stderr)
                continue
            paths.append(path)
        if not paths:
            print("error: none of the given record files exist",
                  file=sys.stderr)
            return 1
    else:
        paths = sorted(REPO_ROOT.glob("BENCH_*.json"))
        if not paths:
            print(f"error: no BENCH_*.json files under {REPO_ROOT}",
                  file=sys.stderr)
            return 1
    print(build_table(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main())
