#!/usr/bin/env python3
"""Noise-aware benchmark regression gate over ``BENCH_*.json`` records.

The benchmarks (``benchmarks/bench_scorer.py``, ``benchmarks/bench_hics.py``,
``benchmarks/bench_distance.py``) each write a machine-readable record file;
the copies committed at the repo root are the performance trajectory the
codebase has already paid for. This tool compares a *fresh* record file
against that baseline and exits non-zero when an op regressed beyond a
noise tolerance — so CI catches the accidental 2x slowdown without flaking
on the ordinary run-to-run jitter of shared runners.

Checks, per fresh record matched to a baseline record (same ``op`` and
same workload signature — n, d, subspace counts, point counts, ...):

* ``wall_time_s`` must not exceed ``baseline * tolerance``.
* ``speedup`` must not fall below ``baseline / tolerance`` (and, when
  ``--min-speedup`` is given, never below that absolute floor).
* Streaming records (``benchmarks/bench_stream.py``): ``windows_per_s``
  must not fall below ``baseline / tolerance``; ``--min-speedup`` gates
  the incremental-vs-recompute speedup record like any other speedup.
* Latency-style records (``benchmarks/bench_serve.py``): ``qps`` must not
  fall below ``baseline / tolerance``, and ``p50_ms`` / ``p95_ms`` must
  not exceed ``baseline * tolerance``. ``p99_ms`` is reported but never
  gated — the tail of a short run is one sample wide on shared runners.
* Cluster scaling records (``op: "serve cluster scaling"``, carrying a
  ``workers`` signature key) gate through the same ``speedup`` floor:
  the recorded value is aggregate QPS at N workers over QPS at the
  curve's first count, so a scaling collapse shows up as a speedup
  regression. CI runs this leg with a wide tolerance (advisory) because
  shared two-core runners cannot reproduce a calibrated curve.
* ``ranked_identical: false`` or ``byte_identical: false`` in a fresh
  record is always a hard failure: a speed win that changes results is a
  correctness bug, not a trade.

Fresh records with no matching baseline (new ops, changed workload
shapes) are reported and skipped — a new benchmark must not fail the gate
the first time it runs.

Usage::

    python tools/bench_sentinel.py --fresh fresh_scorer.json
    python tools/bench_sentinel.py --fresh f.json --baseline BENCH_scorer.json \\
        --tolerance 1.6 --min-speedup 1.2

Without ``--baseline``, the baseline is the repo-root file with the same
basename as the fresh file (the committed trajectory of the same suite).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Workload-shape keys that must agree for two records to be comparable.
#: Only keys present in *both* records are compared, so adding a new
#: descriptor to a benchmark does not orphan its whole history.
SIGNATURE_KEYS = (
    "n",
    "d",
    "n_subspaces",
    "detectors",
    "points",
    "dimensionality",
    "mc_iterations",
    "beam_width",
    # Latency-style records (bench_serve): the request mix is the shape.
    "n_requests",
    "clients",
    "profile",
    "quick",
    # Cluster scaling records: a 2-worker curve point must never be
    # compared against a 4-worker baseline.
    "workers",
    # Streaming records (bench_stream): window geometry is the shape.
    "window",
    "length",
    "anomaly_every",
)

#: Default noise tolerance: a fresh wall time up to 1.5x the baseline (or
#: a speedup down to baseline/1.5) passes. Wide enough for shared-runner
#: jitter, narrow enough to catch any real (2x+) regression.
DEFAULT_TOLERANCE = 1.5


def _signature(record: dict) -> tuple:
    """The workload shape of a record (used to pair fresh with baseline)."""
    return tuple(
        (key, record[key]) for key in SIGNATURE_KEYS if key in record
    )


def _comparable(fresh: dict, baseline: dict) -> bool:
    """Same op, and every signature key present in both records agrees."""
    if fresh.get("op") != baseline.get("op"):
        return False
    return all(
        fresh[key] == baseline[key]
        for key in SIGNATURE_KEYS
        if key in fresh and key in baseline
    )


def compare(
    fresh: list[dict],
    baseline: list[dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    min_speedup: float | None = None,
) -> tuple[list[str], list[str]]:
    """Gate ``fresh`` records against ``baseline`` records.

    Returns ``(regressions, notes)``: regressions are gate failures,
    notes are informational (unmatched ops, passes with numbers). When
    several baseline records match one fresh record, the *best* baseline
    (fastest wall time / highest speedup) is the reference — the
    trajectory's high-water mark is what the code already achieved once.
    """
    if tolerance < 1.0:
        raise ValueError(f"tolerance must be >= 1.0, got {tolerance}")
    regressions: list[str] = []
    notes: list[str] = []
    for record in fresh:
        op = record.get("op", "?")
        if record.get("ranked_identical") is False:
            regressions.append(
                f"{op}: ranked subspaces diverged (ranked_identical=false) "
                "— a correctness failure, not a perf trade"
            )
            continue
        if record.get("byte_identical") is False:
            regressions.append(
                f"{op}: served explanations diverged from the batch path "
                "(byte_identical=false) — a correctness failure, not a "
                "perf trade"
            )
            continue
        matches = [b for b in baseline if _comparable(record, b)]
        if not matches:
            notes.append(f"{op}: no matching baseline record, skipped")
            continue
        wall = record.get("wall_time_s")
        base_walls = [
            b["wall_time_s"] for b in matches if "wall_time_s" in b
        ]
        if wall is not None and base_walls:
            best = min(base_walls)
            if wall > best * tolerance:
                regressions.append(
                    f"{op}: wall time {wall * 1000:.1f} ms exceeds "
                    f"{tolerance:.2f}x the baseline {best * 1000:.1f} ms"
                )
            else:
                notes.append(
                    f"{op}: {wall * 1000:.1f} ms vs baseline "
                    f"{best * 1000:.1f} ms — ok"
                )
        speedup = record.get("speedup")
        base_speedups = [b["speedup"] for b in matches if "speedup" in b]
        if speedup is not None and base_speedups:
            best = max(base_speedups)
            floor = best / tolerance
            if min_speedup is not None:
                floor = max(floor, min_speedup)
            if speedup < floor:
                regressions.append(
                    f"{op}: speedup {speedup:.2f}x fell below the gate "
                    f"{floor:.2f}x (baseline {best:.2f}x)"
                )
            else:
                notes.append(
                    f"{op}: speedup {speedup:.2f}x vs baseline "
                    f"{best:.2f}x — ok"
                )
        # Streaming records (bench_stream): windows-per-second floor, the
        # same shape as the qps gate below.
        wps = record.get("windows_per_s")
        base_wps = [b["windows_per_s"] for b in matches if "windows_per_s" in b]
        if wps is not None and base_wps:
            best = max(base_wps)
            if wps < best / tolerance:
                regressions.append(
                    f"{op}: throughput {wps:.2f} windows/s fell below "
                    f"baseline {best:.2f} windows/s / {tolerance:.2f}"
                )
            else:
                notes.append(
                    f"{op}: {wps:.2f} windows/s vs baseline "
                    f"{best:.2f} windows/s — ok"
                )
        # Latency-style records: throughput floor + percentile ceilings.
        qps = record.get("qps")
        base_qps = [b["qps"] for b in matches if "qps" in b]
        if qps is not None and base_qps:
            best = max(base_qps)
            if qps < best / tolerance:
                regressions.append(
                    f"{op}: throughput {qps:.2f} qps fell below "
                    f"baseline {best:.2f} qps / {tolerance:.2f}"
                )
            else:
                notes.append(
                    f"{op}: {qps:.2f} qps vs baseline {best:.2f} qps — ok"
                )
        for key in ("p50_ms", "p95_ms"):
            value = record.get(key)
            base_values = [b[key] for b in matches if key in b]
            if value is None or not base_values:
                continue
            best = min(base_values)
            if value > best * tolerance:
                regressions.append(
                    f"{op}: {key} {value:.1f} ms exceeds {tolerance:.2f}x "
                    f"the baseline {best:.1f} ms"
                )
            else:
                notes.append(
                    f"{op}: {key} {value:.1f} ms vs baseline "
                    f"{best:.1f} ms — ok"
                )
    return regressions, notes


def _load(path: Path) -> list[dict]:
    with open(path, encoding="utf-8") as fh:
        records = json.load(fh)
    if not isinstance(records, list):
        raise SystemExit(f"{path}: expected a JSON list of records")
    return [r for r in records if isinstance(r, dict)]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--fresh", required=True, metavar="PATH",
        help="record file written by the benchmark run under test",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline record file (default: the repo-root file with the "
        "same basename as --fresh, i.e. the committed trajectory)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="X",
        help=f"noise multiplier before a difference counts as a regression "
        f"(default: {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="absolute floor for speedup records, applied on top of the "
        "relative tolerance (default: none)",
    )
    args = parser.parse_args(argv)

    fresh_path = Path(args.fresh)
    if not fresh_path.is_file():
        print(f"error: no such record file: {fresh_path}", file=sys.stderr)
        return 1
    baseline_path = (
        Path(args.baseline)
        if args.baseline is not None
        else REPO_ROOT / fresh_path.name
    )
    if not baseline_path.is_file():
        # No trajectory yet for this suite: nothing to gate against.
        print(f"bench_sentinel: no baseline at {baseline_path}, skipping")
        return 0

    regressions, notes = compare(
        _load(fresh_path),
        _load(baseline_path),
        tolerance=args.tolerance,
        min_speedup=args.min_speedup,
    )
    for note in notes:
        print(f"  {note}")
    if regressions:
        print(f"bench_sentinel: {len(regressions)} regression(s) vs "
              f"{baseline_path}:", file=sys.stderr)
        for regression in regressions:
            print(f"  REGRESSION {regression}", file=sys.stderr)
        return 1
    print(f"bench_sentinel: ok ({baseline_path.name}, "
          f"tolerance {args.tolerance:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
