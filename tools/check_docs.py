#!/usr/bin/env python
"""Documentation integrity checker.

Two classes of rot this catches, both of which have bitten this repo's
docs before they were checked:

1. **Dead intra-repo links.** Every relative markdown link in every
   tracked ``*.md`` file must resolve to a file (or directory, or
   heading anchor within a markdown file) that actually exists.
2. **Undocumented CLI surface.** Every flag of ``python -m repro`` —
   including every subcommand's flags, recursively (taken from the live
   ``repro.cli.build_parser()``, so this can never lag the code) — must
   be mentioned in ``docs/RUNBOOK.md`` — the runbook is the one place an
   operator should be able to find every knob.
3. **Missing or drifted reference docs.** The documents listed in
   ``REQUIRED_DOCS`` must exist, and ``docs/SERVING.md``'s error-code
   table must name exactly the codes ``repro.serve.protocol.ERROR_CODES``
   defines — the wire contract and its documentation cannot drift apart
   silently.
4. **Streaming coverage in docs/STREAMING.md.** The streaming runbook
   must mention the incremental kill switch (flag and env var, pulled
   from the live module), the stream benchmark, and the byte-identity
   drill — the reuse-vs-recompute contract is exactly what STREAMING.md
   exists to document.
5. **Cluster-mode coverage in docs/SCALING.md.** The cluster runbook
   must mention every ``repro serve`` cluster flag, both cluster env
   vars (pulled from the live modules, not hard-coded strings), and the
   transient routing error code — the scale-out surface is exactly what
   SCALING.md exists to document.

Run it directly (``python tools/check_docs.py``) or via the tier-1 suite
(``tests/test_doc_integrity.py``); CI runs it as a dedicated job. Exits
non-zero with one line per problem.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Inline markdown links/images: [text](target) — target captured.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Fenced code blocks, removed before link extraction.
_FENCE = re.compile(r"```.*?```", re.DOTALL)
#: External targets we do not try to resolve.
_EXTERNAL = ("http://", "https://", "mailto:")

#: Reference documents that must exist (a refactor deleting one is a
#: problem, not a cleanup).
REQUIRED_DOCS = (
    "docs/ALGORITHMS.md",
    "docs/ARCHITECTURE.md",
    "docs/EXPERIMENTS.md",
    "docs/OBSERVABILITY.md",
    "docs/RUNBOOK.md",
    "docs/SCALING.md",
    "docs/SERVING.md",
    "docs/STREAMING.md",
)


def markdown_files() -> list[str]:
    """Every *.md file in the repo, skipping VCS/cache directories."""
    found = []
    for dirpath, dirnames, filenames in os.walk(REPO_ROOT):
        dirnames[:] = [
            d for d in dirnames
            if not d.startswith(".") and d not in {"__pycache__", "node_modules"}
        ]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def heading_anchors(path: str) -> set[str]:
    """GitHub-style anchors of every heading in a markdown file."""
    anchors = set()
    with open(path, encoding="utf-8") as handle:
        text = _FENCE.sub("", handle.read())
    for line in text.splitlines():
        match = re.match(r"#{1,6}\s+(.*)", line)
        if not match:
            continue
        title = re.sub(r"[`*_\[\]()]", "", match.group(1)).strip().lower()
        anchors.add(re.sub(r"\s+", "-", re.sub(r"[^\w\s-]", "", title)))
    return anchors


def check_links(paths: list[str]) -> list[str]:
    """Dead relative links across the given markdown files."""
    problems = []
    for path in paths:
        with open(path, encoding="utf-8") as handle:
            text = _FENCE.sub("", handle.read())
        rel = os.path.relpath(path, REPO_ROOT)
        for target in _LINK.findall(text):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue  # external / same-file anchors: out of scope
            target, _, fragment = target.partition("#")
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(path), target)
            )
            if not os.path.exists(resolved):
                problems.append(f"{rel}: dead link -> {target}")
            elif fragment and resolved.endswith(".md"):
                if fragment.lower() not in heading_anchors(resolved):
                    problems.append(
                        f"{rel}: dead anchor -> {target}#{fragment}"
                    )
    return problems


def _all_cli_flags(parser) -> set[str]:
    """Every ``--flag`` of ``parser``, descending into subcommands.

    The interesting knobs live on subparsers (``repro serve --workers``),
    so a top-level-only walk would silently exempt exactly the flags most
    likely to go undocumented.
    """
    flags: set[str] = set()
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            for subparser in action.choices.values():
                flags |= _all_cli_flags(subparser)
        elif not isinstance(action, argparse._HelpAction):
            flags.update(
                option
                for option in action.option_strings or []
                if option.startswith("--")
            )
    return flags


def check_runbook_flags() -> list[str]:
    """CLI flags (all subcommands included) missing from docs/RUNBOOK.md."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.cli import build_parser

    with open(os.path.join(REPO_ROOT, "docs", "RUNBOOK.md"),
              encoding="utf-8") as handle:
        runbook = handle.read()

    return [
        f"docs/RUNBOOK.md: CLI flag {option} is undocumented"
        for option in sorted(_all_cli_flags(build_parser()))
        if option not in runbook
    ]


def check_required_docs() -> list[str]:
    """Reference documents that have gone missing."""
    return [
        f"{rel}: required document is missing"
        for rel in REQUIRED_DOCS
        if not os.path.isfile(os.path.join(REPO_ROOT, rel))
    ]


def check_serving_error_codes() -> list[str]:
    """SERVING.md's error-code table vs the live protocol's ERROR_CODES."""
    serving_path = os.path.join(REPO_ROOT, "docs", "SERVING.md")
    if not os.path.isfile(serving_path):
        return []  # already reported by check_required_docs
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.serve.protocol import ERROR_CODES

    with open(serving_path, encoding="utf-8") as handle:
        text = handle.read()
    # Table rows of the form: | `code` | yes/no/varies | ... |
    documented = set(re.findall(r"^\|\s*`(\w+)`\s*\|", text, re.MULTILINE))
    problems = []
    for code in ERROR_CODES:
        if code not in documented:
            problems.append(
                f"docs/SERVING.md: error code {code!r} is undocumented"
            )
    for code in sorted(documented - set(ERROR_CODES)):
        problems.append(
            f"docs/SERVING.md: error code {code!r} does not exist in "
            "repro.serve.protocol.ERROR_CODES"
        )
    return problems


def check_scaling_doc() -> list[str]:
    """docs/SCALING.md coverage of the cluster-mode operational surface.

    The env-var names come from the live module constants, so renaming a
    knob without updating SCALING.md fails here rather than shipping
    silently.
    """
    scaling_path = os.path.join(REPO_ROOT, "docs", "SCALING.md")
    if not os.path.isfile(scaling_path):
        return []  # already reported by check_required_docs
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.serve.cluster import SERVE_WORKERS_ENV
    from repro.serve.engine import ENGINE_SNAPSHOT_DIR_ENV

    with open(scaling_path, encoding="utf-8") as handle:
        text = handle.read()
    required = (
        "--workers",
        "--snapshot-dir",
        "--reload-config",
        SERVE_WORKERS_ENV,
        ENGINE_SNAPSHOT_DIR_ENV,
        "worker_unavailable",
    )
    return [
        f"docs/SCALING.md: cluster surface {item!r} is undocumented"
        for item in required
        if item not in text
    ]


def check_streaming_doc() -> list[str]:
    """docs/STREAMING.md coverage of the incremental-streaming surface.

    The env-var name comes from the live module constant, so renaming
    the kill switch without updating STREAMING.md fails here rather
    than shipping silently.
    """
    streaming_path = os.path.join(REPO_ROOT, "docs", "STREAMING.md")
    if not os.path.isfile(streaming_path):
        return []  # already reported by check_required_docs
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.stream.incremental import STREAM_INCREMENTAL_ENV

    with open(streaming_path, encoding="utf-8") as handle:
        text = handle.read()
    required = (
        "--stream-incremental",
        STREAM_INCREMENTAL_ENV,
        "benchmarks/bench_stream.py",
        "tests/test_stream_incremental.py",
        "ExplanationDelta",
        "StreamContrastIndex",
    )
    return [
        f"docs/STREAMING.md: streaming surface {item!r} is undocumented"
        for item in required
        if item not in text
    ]


def main() -> int:
    problems = (
        check_links(markdown_files())
        + check_runbook_flags()
        + check_required_docs()
        + check_serving_error_codes()
    )
    problems += check_scaling_doc()
    problems += check_streaming_doc()
    for problem in problems:
        print(problem)
    if problems:
        print(f"{len(problems)} documentation problem(s)", file=sys.stderr)
        return 1
    print("docs OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
